"""Extension X1 — would variable FEC have recovered the observed errors?

Section 8: "the errors we did observe might be recoverable through a
variable FEC mechanism."  This experiment closes the loop the paper
left as future work:

1. Re-run the two damage-heavy scenarios — the multi-room Tx5 location
   (attenuation bursts) and the "AT&T handset" spread-spectrum-phone
   trial (jam windows) — and harvest the *error syndromes* the analysis
   pipeline extracts.
2. Replay each syndrome against each RCPC rate: encode a packet body,
   apply the syndrome's bit positions scaled to the coded length, and
   count residual errors after Viterbi decoding — with and without
   block interleaving.
3. Drive the adaptive controller with the trials' per-packet signal
   metrics and report the rate schedule it would have chosen and the
   redundancy it would have spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.classify import ClassifiedTrace, PacketClass
from repro.analysis.syndrome import ErrorSyndrome
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.fec.adaptive import AdaptiveFecController
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RATE_ORDER, RcpcCodec
from repro.framing.testpacket import BODY_BITS


@dataclass
class RateOutcome:
    """FEC performance of one rate over one scenario's syndromes."""

    scenario: str
    rate_name: str
    interleaved: bool
    packets: int
    packets_recovered: int
    residual_bit_errors: int
    overhead_fraction: float
    # Burst-aware receiver variants: "none" (plain hard decision),
    # "erase" (AGC-flagged jam window decoded as erasures), "soft"
    # (jam window down-weighted to 0.25 confidence).
    marking: str = "none"

    @property
    def recovery_fraction(self) -> float:
        if self.packets == 0:
            return 1.0
        return self.packets_recovered / self.packets


@dataclass
class AdaptiveOutcome:
    """What the adaptive controller would have spent on one scenario."""

    scenario: str
    packets: int
    rate_counts: dict[str, int]
    mean_overhead: float


@dataclass
class FecEvalResult:
    outcomes: list[RateOutcome] = field(default_factory=list)
    adaptive: list[AdaptiveOutcome] = field(default_factory=list)

    def outcome(
        self,
        scenario: str,
        rate: str,
        interleaved: bool,
        marking: str = "none",
    ) -> RateOutcome:
        for o in self.outcomes:
            if (
                o.scenario == scenario
                and o.rate_name == rate
                and o.interleaved == interleaved
                and o.marking == marking
            ):
                return o
        raise KeyError((scenario, rate, interleaved, marking))


def _window_syndrome(
    syndrome: ErrorSyndrome, coded_bits: int, rng: np.random.Generator
) -> np.ndarray:
    """Replay a coded-chunk-sized window of the syndrome's timeline.

    The coded block occupies ``coded_bits`` of airtime somewhere inside
    the 8192-bit body; the window's error positions transfer verbatim,
    preserving the burst structure and local density exactly (scaling
    positions would compress bursts and inflate density).
    """
    if syndrome.body_bits_damaged == 0:
        return np.empty(0, dtype=np.int64)
    span = min(coded_bits, BODY_BITS)
    offset = int(rng.integers(0, BODY_BITS - span + 1))
    positions = syndrome.body_bit_positions
    in_window = positions[(positions >= offset) & (positions < offset + span)]
    return (in_window - offset).astype(np.int64)


# How far beyond the observed burst span the receiver's AGC-derived
# window estimate extends (wire bits).
WINDOW_PAD_BITS = 48
SOFT_WEIGHT = 0.25


def _evaluate_rate(
    scenario: str,
    syndromes: list[ErrorSyndrome],
    rate_name: str,
    interleaved: bool,
    marking: str = "none",
    info_bits: int = 1024,
    rng_seed: int = 7,
) -> RateOutcome:
    """Replay syndromes against one code rate.

    ``info_bits`` is the per-packet information-block size; using the
    first kilobit of the body keeps the Viterbi work tractable while
    exercising the same error densities.  ``marking`` selects the
    burst-aware receiver variant: the modem's AGC knows which span an
    interference burst covered, so the decoder can treat that window as
    erasures ("erase") or down-weight it ("soft").
    """
    codec = RcpcCodec(rate_name)
    interleaver = BlockInterleaver(rows=32, columns=64)
    rng = np.random.default_rng(rng_seed)
    info = rng.integers(0, 2, info_bits).astype(np.uint8)
    transmitted = codec.encode(info)
    coded_bits = len(transmitted)

    # Damage every syndrome's block first (channel modelling is cheap),
    # then decode the whole batch in one Viterbi pass — row results are
    # bit-identical to per-packet decode calls, and rows without burst
    # marking ride along with all-ones weights (exactly equivalent to
    # unweighted decoding).
    damaged_rows: list[np.ndarray] = []
    weight_rows: list[np.ndarray | None] = []
    any_weights = False
    for syndrome in syndromes:
        # Replay a chunk-sized window of the syndrome's timeline.
        span_positions = _window_syndrome(syndrome, coded_bits, rng)
        channel_stream = (
            interleaver.scramble(transmitted) if interleaved else transmitted
        )
        damaged = channel_stream.copy()
        positions = span_positions[span_positions < len(damaged)]
        damaged[positions] ^= 1

        weights = None
        if marking != "none" and len(positions):
            # The receiver's window estimate, in wire (time) order.
            lo = max(0, int(positions.min()) - WINDOW_PAD_BITS)
            hi = min(coded_bits, int(positions.max()) + WINDOW_PAD_BITS)
            if marking == "erase":
                from repro.fec.viterbi import ERASED

                damaged[lo:hi] = ERASED
            else:  # soft
                weights = np.ones(coded_bits, dtype=np.float64)
                weights[lo:hi] = SOFT_WEIGHT
        if interleaved:
            damaged = interleaver.unscramble(damaged)
            if weights is not None:
                weights = interleaver.unscramble(weights)
        damaged_rows.append(damaged)
        weight_rows.append(weights)
        if weights is not None:
            any_weights = True

    recovered = 0
    residual = 0
    if damaged_rows:
        weights_block = None
        if any_weights:
            weights_block = np.stack(
                [
                    w
                    if w is not None
                    else np.ones(coded_bits, dtype=np.float64)
                    for w in weight_rows
                ]
            )
        decoded = codec.decode_batch(
            np.stack(damaged_rows), weights=weights_block
        )
        errors_per_packet = (decoded != info[None, :]).sum(axis=1)
        recovered = int((errors_per_packet == 0).sum())
        residual = int(errors_per_packet.sum())
    return RateOutcome(
        scenario=scenario,
        rate_name=rate_name,
        interleaved=interleaved,
        packets=len(syndromes),
        packets_recovered=recovered,
        residual_bit_errors=residual,
        overhead_fraction=codec.overhead,
        marking=marking,
    )


def _collect_syndromes(classified, limit: int) -> list[ErrorSyndrome]:
    syndromes = [
        p.syndrome
        for p in classified.by_class(PacketClass.BODY_DAMAGED)
        if p.syndrome is not None
    ]
    return syndromes[:limit]


_RATE_OVERHEAD = {"8/9": 1 / 8, "4/5": 2 / 8, "2/3": 4 / 8, "1/2": 1.0}


def _adaptive_schedule(scenario: str, classified) -> AdaptiveOutcome:
    controller = AdaptiveFecController()
    statuses = [packet.record.status for packet in classified.test_packets]
    rates = controller.observe_bulk(
        np.array([s.signal_level for s in statuses], dtype=np.float64),
        np.array([s.silence_level for s in statuses], dtype=np.float64),
        np.array([s.signal_quality for s in statuses], dtype=np.float64),
    )
    counts: dict[str, int] = {name: 0 for name in RATE_ORDER}
    overhead_total = 0.0
    for rate_name in rates:
        counts[rate_name] += 1
        overhead_total += _RATE_OVERHEAD[rate_name]
    return AdaptiveOutcome(
        scenario=scenario,
        packets=len(rates),
        rate_counts=counts,
        mean_overhead=overhead_total / max(1, len(rates)),
    )


def _harvest_tx5(scale: float, seed: int) -> ClassifiedTrace:
    """Attenuation bursts: the multi-room Tx5 location."""
    from repro.experiments import multiroom

    return multiroom.run(scale=scale, seed=seed).tx5_classified


def _harvest_ss_handset(scale: float, seed: int) -> ClassifiedTrace:
    """SS-phone jam windows: the "AT&T handset" Table-11 trial."""
    from repro.experiments import phones_spread

    return phones_spread.run(scale=scale, seed=seed).classified["AT&T handset"]


@dataclass(frozen=True)
class DamageSource:
    """One damage-heavy scenario the FEC evaluation replays.

    ``scenario`` names the registered topology the source experiment
    compiles (tagged on the plan, so the engine validates it against
    the scenario registry at plan-build time); ``harvest`` re-runs that
    experiment and returns the classified trace to mine for syndromes.
    """

    scenario: str
    harvest: Callable[[float, int], ClassifiedTrace]


#: Name -> damage source.  Adding a new damage-heavy trial means adding
#: one entry here — the plans, dispatch, and validation all read it.
DAMAGE_SOURCES: dict[str, DamageSource] = {
    "Tx5 attenuation": DamageSource("paper/multiroom", _harvest_tx5),
    "SS-phone handset": DamageSource(
        "paper/table11-att-handset", _harvest_ss_handset
    ),
}


def _run_scenario(
    scenario: str, scale: float, seed: int, syndrome_limit: int
) -> tuple[list[RateOutcome], AdaptiveOutcome]:
    """One damage scenario end to end, picklable.

    Re-runs the source experiment (serially, in-process), harvests its
    syndromes, replays them against every rate/interleaving/marking
    combination, and drives the adaptive controller — so nothing but
    small outcome dataclasses crosses a pool boundary.
    """
    classified = DAMAGE_SOURCES[scenario].harvest(scale, seed)
    syndromes = _collect_syndromes(classified, syndrome_limit)
    outcomes = []
    for rate_name in RATE_ORDER:
        for interleaved in (False, True):
            outcomes.append(
                _evaluate_rate(scenario, syndromes, rate_name, interleaved)
            )
    # Burst-aware receiver variants at the strongest rate: the modem's
    # AGC flags the jam window, the decoder exploits it.
    for marking in ("erase", "soft"):
        outcomes.append(
            _evaluate_rate(
                scenario, syndromes, "1/2", interleaved=True, marking=marking
            )
        )
    return outcomes, _adaptive_schedule(scenario, classified)


SCENARIOS = tuple(DAMAGE_SOURCES)


def _aggregate(ctx: PlanContext, values: list) -> FecEvalResult:
    result = FecEvalResult()
    for outcomes, adaptive in values:
        result.outcomes.extend(outcomes)
        result.adaptive.append(adaptive)
    return result


def _render(result: FecEvalResult, scale: float) -> None:
    print("Extension X1: RCPC recoverability of observed error syndromes")
    print(f"{'scenario':>18} | {'rate':>4} | {'ilv':>3} | {'pkts':>5} | "
          f"{'recovered':>9} | {'residual':>8} | {'overhead':>8}")
    for o in result.outcomes:
        label = o.rate_name + {"none": "", "erase": "+E", "soft": "+S"}[o.marking]
        print(f"{o.scenario:>18} | {label:>6} | "
              f"{'yes' if o.interleaved else 'no':>3} | {o.packets:5d} | "
              f"{100 * o.recovery_fraction:8.1f}% | {o.residual_bit_errors:8d} | "
              f"{100 * o.overhead_fraction:7.1f}%")
    print("\nAdaptive controller schedules:")
    for a in result.adaptive:
        print(f"  {a.scenario}: {a.rate_counts} "
              f"mean overhead {100 * a.mean_overhead:.1f}%")


def _report_lines(report, result: FecEvalResult, scale: float) -> None:
    tx5_fec = result.outcome("Tx5 attenuation", "4/5", interleaved=True)
    ss_fec = result.outcome("SS-phone handset", "1/2", interleaved=True)
    report.add(
        "X1 variable FEC", "Tx5 @ 4/5+ilv", "'trivial to correct'",
        f"{100 * tx5_fec.recovery_fraction:.0f}% recovered",
        tx5_fec.recovery_fraction > 0.9,
    )
    report.add(
        "X1 variable FEC", "SS phone @ 1/2", "'might be recoverable'",
        f"{100 * ss_fec.recovery_fraction:.0f}% recovered",
        ss_fec.recovery_fraction > 0.8,
    )


@experiment(
    name="fec",
    artifact="X1",
    description="X1: variable FEC on observed syndromes",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=81,
    report_lines=_report_lines,
    report_extras={"syndrome_limit": 25},
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per damage scenario (``extras={"scenarios": [...]}``
    selects a subset; unknown names fail here, before anything runs)."""
    syndrome_limit = ctx.extra("syndrome_limit", 60)
    requested = tuple(ctx.extra("scenarios", SCENARIOS))
    unknown = [name for name in requested if name not in DAMAGE_SOURCES]
    if unknown:
        raise ValueError(
            f"unknown FEC damage scenario(s) {unknown!r}; "
            f"valid names: {sorted(DAMAGE_SOURCES)}"
        )
    return [
        TrialPlan(
            scenario,
            _run_scenario,
            {
                "scenario": scenario,
                "scale": ctx.scale,
                "syndrome_limit": syndrome_limit,
            },
            scenario=DAMAGE_SOURCES[scenario].scenario,
        )
        for scenario in requested
    ]


def run(scale: float = 1.0, seed: int = 81, syndrome_limit: int = 60,
        jobs: int = 1) -> FecEvalResult:
    return ENGINE.run(
        "fec", scale=scale, seed=seed, jobs=jobs,
        extras={"syndrome_limit": syndrome_limit},
    )


def main(scale: float = 1.0, seed: int = 81, jobs: int = 1) -> FecEvalResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
