"""Tables 8 and 9 — human-body attenuation (Section 6.3).

A 56 ft path through two concrete walls, with and without "a person
bending over as if to examine the laptop screen closely" in the way.
Paper findings: the body costs ~6 signal levels (12.55 → 6.73) and
induces packet loss, a few truncations, and body damage in ~15 % of
received packets — while the no-body control is error free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import ClassifiedTrace, classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import (
    SignalStats,
    signal_stats_by_class,
    stats_for_packets,
)
from repro.analysis.tables import render_metrics_table, render_signal_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

#: Trial name -> registered topology (with/without the person in the way).
TRIAL_SCENARIOS = {"No body": "paper/no-body", "Body": "paper/body"}

PAPER_PACKETS = 1_440

PAPER_LEVEL_MEANS = {"No body": 12.55, "Body": 6.73}
PAPER_BODY_DAMAGED = 224  # of 1442 received


@dataclass
class BodyResult:
    metrics_rows: list[TrialMetrics] = field(default_factory=list)
    signal_rows: list[SignalStats] = field(default_factory=list)
    body_breakdown: list[SignalStats] = field(default_factory=list)
    body_classified: ClassifiedTrace | None = None

    def metrics(self, name: str) -> TrialMetrics:
        for row in self.metrics_rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def level_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.level is not None:
                return row.level.mean
        raise KeyError(name)

    @property
    def body_cost_levels(self) -> float:
        return self.level_mean("No body") - self.level_mean("Body")


def _run_trial(
    name: str,
    with_body: bool,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> tuple:
    """One body trial, picklable; compiles the scenario in-process."""
    from repro.scenario.registry import REGISTRY

    config = REGISTRY.compile(TRIAL_SCENARIOS[name]).trial_config(
        name=name, packets=packets, seed=seed
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, name, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    return (
        metrics_from_classified(classified),
        stats_for_packets(name, classified.test_packets),
        classified if with_body else None,
    )


def _aggregate(ctx: PlanContext, values: list) -> BodyResult:
    result = BodyResult()
    for metrics_row, signal_row, classified in values:
        result.metrics_rows.append(metrics_row)
        result.signal_rows.append(signal_row)
        if classified is not None:
            result.body_classified = classified
            result.body_breakdown = signal_stats_by_class(classified)
    return result


def _render(result: BodyResult, scale: float) -> None:
    print(f"Table 8: Effects of human body on packet loss and errors "
          f"(scale={scale:g})")
    print(render_metrics_table(result.metrics_rows))
    print("\nTable 9: Effect of human body on signal measurements")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print("\nBody trial breakdown by packet class:")
    print(render_signal_table(result.body_breakdown))
    print(f"\nBody cost: {result.body_cost_levels:.1f} levels "
          f"(paper: ~{PAPER_LEVEL_MEANS['No body'] - PAPER_LEVEL_MEANS['Body']:.1f})")


def _report_lines(report, result: BodyResult, scale: float) -> None:
    report.add(
        "T8-9 body", "body cost", "~5.8 levels",
        f"{result.body_cost_levels:.1f}",
        4.5 < result.body_cost_levels < 7.5,
    )


@experiment(
    name="table8",
    artifact="Tables 8-9",
    description="Tables 8-9: human body",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=63,
    aliases=("table9",),
    traceable=True,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """The no-body control and the body trial."""
    packets = max(400, int(PAPER_PACKETS * ctx.scale))
    return [
        TrialPlan(
            name,
            _run_trial,
            {"name": name, "with_body": with_body, "packets": packets},
            traceable=True,
            scenario=TRIAL_SCENARIOS[name],
        )
        for name, with_body in [("No body", False), ("Body", True)]
    ]


def run(scale: float = 1.0, seed: int = 63, jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2") -> BodyResult:
    return ENGINE.run(
        "table8", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(scale: float = 1.0, seed: int = 63, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> BodyResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
