"""One-shot reproduction report: run everything, compare to the paper.

``python -m repro report [--scale S] [--out report.md] [--jobs N]``
executes every experiment and emits a Markdown report with a
paper-vs-measured line per headline quantity — a regenerable,
seed-stable version of EXPERIMENTS.md's tables.

The report is registry-driven: it covers every registered
:class:`repro.experiments.engine.ExperimentSpec` whose ``report_lines``
hook is set, in registry order.  Per-experiment scale tweaks
(``report_scale``) and options (``report_extras``) live on the specs,
next to the experiments they describe.

The experiments are mutually independent (the engine derives every
trial seed from ``(root seed, experiment name, trial label)``), so the
report fans them out across a process pool when ``--jobs N`` is given;
results, tables, and merged metrics are byte-identical to the serial
run (see ``repro.parallel``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro import obs
from repro.experiments import engine
from repro.obs import runtime as _obs_runtime
from repro.parallel import Task, run_tasks


@dataclass
class ReportLine:
    """One paper-vs-measured comparison."""

    experiment: str
    quantity: str
    paper: str
    measured: str
    in_band: bool

    def markdown(self) -> str:
        flag = "yes" if self.in_band else "**NO**"
        return (
            f"| {self.experiment} | {self.quantity} | {self.paper} "
            f"| {self.measured} | {flag} |"
        )


@dataclass
class ExperimentResources:
    """Resource footprint of one experiment within the report run."""

    experiment: str
    wall_clock_s: float
    events_fired: int
    packets_offered: int
    # From the run manifest's resource accounting; 0 when the manifest
    # predates it (or the platform exposes neither /proc nor rusage).
    cpu_s: float = 0.0
    peak_rss_kb: int = 0


@dataclass
class ReproductionReport:
    lines: list[ReportLine] = field(default_factory=list)
    resources: list[ExperimentResources] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        quantity: str,
        paper: str,
        measured: str,
        in_band: bool,
    ) -> None:
        self.lines.append(
            ReportLine(experiment, quantity, paper, measured, in_band)
        )

    @property
    def total(self) -> int:
        return len(self.lines)

    @property
    def in_band_count(self) -> int:
        return sum(1 for line in self.lines if line.in_band)

    def table_markdown(self) -> str:
        """Just the deterministic comparison table — the part of the
        report that is byte-identical for any ``--jobs`` value."""
        out = io.StringIO()
        out.write(
            f"{self.in_band_count}/{self.total} headline quantities in band.\n\n"
        )
        out.write("| experiment | quantity | paper | measured | in band |\n")
        out.write("|---|---|---|---|---|\n")
        for line in self.lines:
            out.write(line.markdown() + "\n")
        return out.getvalue()

    def markdown(self) -> str:
        out = io.StringIO()
        out.write("# Reproduction report\n\n")
        out.write(self.table_markdown())
        if self.resources:
            out.write("\n## Resource footprint\n\n")
            out.write("| experiment | wall-clock (s) | CPU (s) "
                      "| peak RSS (MB) | events fired "
                      "| packets simulated |\n")
            out.write("|---|---:|---:|---:|---:|---:|\n")
            for r in self.resources:
                out.write(
                    f"| {r.experiment} | {r.wall_clock_s:.2f} "
                    f"| {r.cpu_s:.2f} | {r.peak_rss_kb / 1024:.0f} "
                    f"| {r.events_fired} | {r.packets_offered} |\n"
                )
            # CPU seconds add up across experiments; peak RSS is a
            # per-process high-water mark, so the total takes the max.
            out.write(
                f"| **total** "
                f"| {sum(r.wall_clock_s for r in self.resources):.2f} "
                f"| {sum(r.cpu_s for r in self.resources):.2f} "
                f"| {max(r.peak_rss_kb for r in self.resources) / 1024:.0f} "
                f"| {sum(r.events_fired for r in self.resources)} "
                f"| {sum(r.packets_offered for r in self.resources)} |\n"
            )
        return out.getvalue()


def report_specs() -> list:
    """Every registered spec that contributes report lines, in order."""
    return [spec for spec in engine.specs() if spec.report_lines is not None]


def _run_report_experiment(name: str, scale: float, seed: int):
    """One report experiment, resolved in-worker (picklable by name)."""
    spec = engine.get(name)
    return engine.ENGINE.run(
        spec, scale=scale, seed=seed, extras=dict(spec.report_extras)
    )


def _report_tasks(scale: float, seed: int) -> list[Task]:
    """Every report experiment as an independent, picklable task.

    All experiments share the report's root seed: the engine derives
    each trial's stream from ``(root seed, experiment name, trial
    label)``, so no two trials anywhere in the run collide.
    """
    tasks = []
    for spec in report_specs():
        eff_scale = (
            spec.report_scale(scale) if spec.report_scale is not None else scale
        )
        tasks.append(
            Task(
                spec.name,
                _run_report_experiment,
                {"name": spec.name, "scale": eff_scale, "seed": seed},
                seed=seed,
                scale=eff_scale,
            )
        )
    return tasks


def build_report(
    scale: float = 0.25,
    seed: int = 1996,
    jobs: int = 1,
    progress: bool = False,
) -> ReproductionReport:
    """Run every report experiment at ``scale`` and compare headlines.

    Runs under an observability session (reusing the CLI's if one is
    active): each experiment is timed, its per-layer counter deltas are
    folded into a run manifest (written to the telemetry sink when one
    is open), and the report gains a resource-footprint footer.

    ``jobs > 1`` fans the experiments across a process pool; the
    comparison table, the per-experiment events/packets columns, and
    the merged metric counters are byte-identical to ``jobs=1`` (only
    wall-clock readings differ — they are measurements, not results).
    """
    report = ReproductionReport()
    specs = {spec.name: spec for spec in report_specs()}
    with obs.ensure_metrics():
        git_rev = obs.git_revision()
        with _obs_runtime.trace_span("report", scale=scale, jobs=jobs):
            results = run_tasks(
                _report_tasks(scale, seed), jobs=jobs, label="report",
                git_rev=git_rev, progress=progress,
            )
        for result in results:
            manifest = result.manifest or {}
            report.resources.append(
                ExperimentResources(
                    experiment=result.name,
                    wall_clock_s=manifest.get(
                        "wall_clock_s", result.wall_clock_s
                    ),
                    events_fired=manifest.get("events_fired", 0),
                    packets_offered=manifest.get("packets_offered", 0),
                    cpu_s=manifest.get("cpu_s") or 0.0,
                    peak_rss_kb=manifest.get("peak_rss_kb") or 0,
                )
            )
            specs[result.name].report_lines(report, result.value, scale)
    return report


def main(
    scale: float = 0.25,
    seed: int = 1996,
    out: str | None = None,
    jobs: int = 1,
    progress: bool = False,
) -> ReproductionReport:
    report = build_report(scale=scale, seed=seed, jobs=jobs, progress=progress)
    text = report.markdown()
    if out:
        with open(out, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {out} ({report.in_band_count}/{report.total} in band)")
    else:
        print(text)
    return report


if __name__ == "__main__":
    main()
