"""One-shot reproduction report: run everything, compare to the paper.

``python -m repro report [--scale S] [--out report.md]`` executes every
experiment and emits a Markdown report with a paper-vs-measured line per
headline quantity — a regenerable, seed-stable version of
EXPERIMENTS.md's tables.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from time import perf_counter

from repro import obs
from repro.experiments import (
    baseline,
    body,
    competing,
    error_vs_level,
    fec_eval,
    hidden_terminal,
    mac_ablation,
    multiroom,
    phones_narrowband,
    phones_spread,
    signal_vs_distance,
    throughput,
    walls,
)


@dataclass
class ReportLine:
    """One paper-vs-measured comparison."""

    experiment: str
    quantity: str
    paper: str
    measured: str
    in_band: bool

    def markdown(self) -> str:
        flag = "yes" if self.in_band else "**NO**"
        return (
            f"| {self.experiment} | {self.quantity} | {self.paper} "
            f"| {self.measured} | {flag} |"
        )


@dataclass
class ExperimentResources:
    """Resource footprint of one experiment within the report run."""

    experiment: str
    wall_clock_s: float
    events_fired: int
    packets_offered: int


@dataclass
class ReproductionReport:
    lines: list[ReportLine] = field(default_factory=list)
    resources: list[ExperimentResources] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        quantity: str,
        paper: str,
        measured: str,
        in_band: bool,
    ) -> None:
        self.lines.append(
            ReportLine(experiment, quantity, paper, measured, in_band)
        )

    @property
    def total(self) -> int:
        return len(self.lines)

    @property
    def in_band_count(self) -> int:
        return sum(1 for line in self.lines if line.in_band)

    def markdown(self) -> str:
        out = io.StringIO()
        out.write("# Reproduction report\n\n")
        out.write(
            f"{self.in_band_count}/{self.total} headline quantities in band.\n\n"
        )
        out.write("| experiment | quantity | paper | measured | in band |\n")
        out.write("|---|---|---|---|---|\n")
        for line in self.lines:
            out.write(line.markdown() + "\n")
        if self.resources:
            out.write("\n## Resource footprint\n\n")
            out.write("| experiment | wall-clock (s) | events fired "
                      "| packets simulated |\n")
            out.write("|---|---:|---:|---:|\n")
            for r in self.resources:
                out.write(
                    f"| {r.experiment} | {r.wall_clock_s:.2f} "
                    f"| {r.events_fired} | {r.packets_offered} |\n"
                )
            out.write(
                f"| **total** "
                f"| {sum(r.wall_clock_s for r in self.resources):.2f} "
                f"| {sum(r.events_fired for r in self.resources)} "
                f"| {sum(r.packets_offered for r in self.resources)} |\n"
            )
        return out.getvalue()


def build_report(scale: float = 0.25, seed: int = 1996) -> ReproductionReport:
    """Run every experiment at ``scale`` and compare headline numbers.

    Runs under an observability session (reusing the CLI's if one is
    active): each experiment is timed, its per-layer counter deltas are
    folded into a run manifest (written to the telemetry sink when one
    is open), and the report gains a resource-footprint footer.
    """
    report = ReproductionReport()
    with obs.ensure_metrics() as state:
        git_rev = obs.git_revision()

        def timed(name, thunk):
            counters_before = state.metrics.counters_snapshot()
            start = perf_counter()
            result = thunk()
            manifest = obs.build_manifest(
                name,
                metrics=state.metrics,
                counters_before=counters_before,
                wall_clock_s=perf_counter() - start,
                seed=seed,
                scale=scale,
                git_rev=git_rev,
            )
            if state.sink is not None:
                state.sink.emit(manifest.to_record())
            report.resources.append(
                ExperimentResources(
                    experiment=name,
                    wall_clock_s=manifest.wall_clock_s,
                    events_fired=manifest.events_fired,
                    packets_offered=manifest.packets_offered,
                )
            )
            return result

        _populate_report(report, timed, scale, seed)
    return report


def _populate_report(report, timed, scale: float, seed: int) -> None:
    """Run every experiment (through ``timed``) and add headline lines."""
    r = timed("table2", lambda: baseline.run(scale=max(scale * 0.2, 0.01),
                                             seed=seed))
    report.add(
        "T2 baseline", "worst trial loss", "<= .07%",
        f"{r.worst_loss_percent:.3f}%", r.worst_loss_percent < 0.2,
    )
    report.add(
        "T2 baseline", "aggregate BER", "~1e-10",
        f"{r.aggregate_ber:.1e}", r.aggregate_ber < 1e-7,
    )

    f1 = timed("figure1", lambda: signal_vs_distance.run(scale=scale,
                                                          seed=seed + 1))
    report.add(
        "F1 path loss", "dip at 6 ft", "noticeable",
        f"{f1.dip_depth(6.0):.1f} levels", f1.dip_depth(6.0) > 2.0,
    )
    report.add(
        "F1 path loss", "dip at 30 ft", "noticeable",
        f"{f1.dip_depth(30.0):.1f} levels", f1.dip_depth(30.0) > 2.0,
    )

    t3 = timed("table3", lambda: error_vs_level.run(scale=scale,
                                                     seed=seed + 2))
    damaged_mean = t3.group("Body damaged").level.mean
    undamaged_mean = t3.group("Undamaged").level.mean
    report.add(
        "T3/F2 error region", "body-damaged level mean", "7.52",
        f"{damaged_mean:.2f}", 5.5 < damaged_mean < 9.0,
    )
    report.add(
        "T3/F2 error region", "undamaged - damaged gap", ">= ~7 levels",
        f"{undamaged_mean - damaged_mean:.1f}",
        undamaged_mean - damaged_mean > 2.0,
    )

    t4 = timed("table4", lambda: walls.run(scale=scale, seed=seed + 3))
    plaster = t4.wall_cost(("Air 1", "Wall 1"))
    concrete = t4.wall_cost(("Air 2", "Wall 2"))
    report.add("T4 walls", "plaster+mesh cost", "~5 levels",
               f"{plaster:.1f}", 4.0 < plaster < 6.0)
    report.add("T4 walls", "concrete cost", "~2 levels",
               f"{concrete:.1f}", 1.0 < concrete < 3.0)

    t5 = timed("table5", lambda: multiroom.run(scale=scale, seed=seed + 4))
    tx5 = t5.metrics("Tx5")
    report.add(
        "T5-7 multiroom", "Tx5 level mean", "9.50",
        f"{t5.level_mean('Tx5'):.2f}", abs(t5.level_mean("Tx5") - 9.5) < 1.5,
    )
    report.add(
        "T5-7 multiroom", "Tx5 damaged packets / 1440", "~25",
        f"{tx5.body_damaged_packets / max(scale, 1e-9):.0f} (scaled)",
        tx5.body_damaged_packets > 0,
    )

    t8 = timed("table8", lambda: body.run(scale=scale, seed=seed + 5))
    report.add(
        "T8-9 body", "body cost", "~5.8 levels",
        f"{t8.body_cost_levels:.1f}", 4.5 < t8.body_cost_levels < 7.5,
    )

    t10 = timed("table10", lambda: phones_narrowband.run(scale=scale,
                                                          seed=seed + 6))
    ordering_ok = (
        t10.silence_mean("Bases nearby")
        > t10.silence_mean("Cluster")
        > t10.silence_mean("Handsets nearby")
        > t10.silence_mean("Handsets nearby talking")
        > t10.silence_mean("Phones off")
    )
    report.add(
        "T10 narrowband", "damaged test packets", "0",
        str(t10.total_damaged_test_packets), t10.total_damaged_test_packets == 0,
    )
    report.add(
        "T10 narrowband", "silence ordering (power control)",
        "bases > cluster > handsets > talking > off",
        "reproduced" if ordering_ok else "violated", ordering_ok,
    )

    t11 = timed("table11", lambda: phones_spread.run(scale=scale,
                                                      seed=seed + 7))
    stomped = t11.summary("RS base")
    handset = t11.summary("AT&T handset")
    report.add(
        "T11-13 SS phones", "base-near loss", "~52%",
        f"{stomped.loss_percent:.0f}%", 35 < stomped.loss_percent < 70,
    )
    report.add(
        "T11-13 SS phones", "base-near truncation", "100%",
        f"{stomped.truncated_percent:.0f}%", stomped.truncated_percent > 80,
    )
    report.add(
        "T11-13 SS phones", "handset body damage", "59%",
        f"{handset.body_percent:.0f}%", 40 < handset.body_percent < 75,
    )
    report.add(
        "T11-13 SS phones", "remote cluster", "harmless",
        f"{t11.summary('RS remote cluster').loss_percent:.1f}% loss",
        t11.summary("RS remote cluster").loss_percent < 1.0,
    )

    t14 = timed("table14", lambda: competing.run(scale=scale, seed=seed + 8,
                                                  include_unusable=True))
    masked = t14.metrics("With interference")
    silence_delta = t14.silence_mean("With interference") - t14.silence_mean(
        "Without interference"
    )
    report.add(
        "T14 competing", "masked: bit errors", "0",
        str(masked.body_bits_damaged), masked.body_bits_damaged == 0,
    )
    report.add(
        "T14 competing", "silence rise", "+10.3 levels",
        f"+{silence_delta:.1f}", 8.0 < silence_delta < 14.0,
    )
    report.add(
        "T14 competing", "unmasked", "completely unusable",
        f"{t14.unusable_metrics.packet_loss_percent:.0f}% loss",
        t14.unusable_metrics.packet_loss_percent > 50,
    )

    x1 = timed("fec", lambda: fec_eval.run(scale=scale, seed=seed + 9,
                                            syndrome_limit=25))
    tx5_fec = x1.outcome("Tx5 attenuation", "4/5", interleaved=True)
    ss_fec = x1.outcome("SS-phone handset", "1/2", interleaved=True)
    report.add(
        "X1 variable FEC", "Tx5 @ 4/5+ilv", "'trivial to correct'",
        f"{100 * tx5_fec.recovery_fraction:.0f}% recovered",
        tx5_fec.recovery_fraction > 0.9,
    )
    report.add(
        "X1 variable FEC", "SS phone @ 1/2", "'might be recoverable'",
        f"{100 * ss_fec.recovery_fraction:.0f}% recovered",
        ss_fec.recovery_fraction > 0.8,
    )

    # MAC statistics need enough frames to wash out the startup
    # transient (all three senders fire at t=0).
    x3 = timed("mac", lambda: mac_ablation.run(scale=max(scale, 0.7),
                                                seed=seed + 10))
    report.add(
        "X3 MAC", "blind CSMA/CD delivery", "(rationale for CSMA/CA)",
        f"{100 * x3.outcome('csma_cd_blind').delivery_fraction:.0f}%",
        x3.outcome("csma_cd_blind").delivery_fraction < 0.3,
    )
    report.add(
        "X3 MAC", "CSMA/CA delivery", "near wired",
        f"{100 * x3.outcome('csma_ca').delivery_fraction:.0f}%",
        x3.outcome("csma_ca").delivery_fraction > 0.85,
    )

    x6 = timed("hidden", lambda: hidden_terminal.run(scale=scale,
                                                      seed=seed + 11))
    report.add(
        "X6 hidden terminal", "capture saves stronger sender",
        "conjectured",
        f"{100 * x6.outcome('hidden, receiver off-centre').stronger_intact_fraction:.0f}%",
        x6.outcome("hidden, receiver off-centre").stronger_intact_fraction > 0.7,
    )

    x7 = timed("throughput", lambda: throughput.run(scale=scale,
                                                     seed=seed + 12))
    report.add(
        "X7 throughput", "FEC/raw crossover level", "inside error region (<8)",
        f"{x7.crossover_level():.1f}", 4.0 <= x7.crossover_level() <= 8.0,
    )


def main(scale: float = 0.25, seed: int = 1996, out: str | None = None) -> ReproductionReport:
    report = build_report(scale=scale, seed=seed)
    text = report.markdown()
    if out:
        with open(out, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {out} ({report.in_band_count}/{report.total} in band)")
    else:
        print(text)
    return report


if __name__ == "__main__":
    main()
