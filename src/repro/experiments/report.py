"""One-shot reproduction report: run everything, compare to the paper.

``python -m repro report [--scale S] [--out report.md] [--jobs N]``
executes every experiment and emits a Markdown report with a
paper-vs-measured line per headline quantity — a regenerable,
seed-stable version of EXPERIMENTS.md's tables.

The experiments are mutually independent (each derives every random
stream from its own seed), so the report fans them out across a
process pool when ``--jobs N`` is given; results, tables, and merged
metrics are byte-identical to the serial run (see ``repro.parallel``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro import obs
from repro.experiments import (
    baseline,
    body,
    competing,
    error_vs_level,
    fec_eval,
    hidden_terminal,
    mac_ablation,
    multiroom,
    phones_narrowband,
    phones_spread,
    signal_vs_distance,
    throughput,
    walls,
)
from repro.parallel import Task, run_tasks


@dataclass
class ReportLine:
    """One paper-vs-measured comparison."""

    experiment: str
    quantity: str
    paper: str
    measured: str
    in_band: bool

    def markdown(self) -> str:
        flag = "yes" if self.in_band else "**NO**"
        return (
            f"| {self.experiment} | {self.quantity} | {self.paper} "
            f"| {self.measured} | {flag} |"
        )


@dataclass
class ExperimentResources:
    """Resource footprint of one experiment within the report run."""

    experiment: str
    wall_clock_s: float
    events_fired: int
    packets_offered: int


@dataclass
class ReproductionReport:
    lines: list[ReportLine] = field(default_factory=list)
    resources: list[ExperimentResources] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        quantity: str,
        paper: str,
        measured: str,
        in_band: bool,
    ) -> None:
        self.lines.append(
            ReportLine(experiment, quantity, paper, measured, in_band)
        )

    @property
    def total(self) -> int:
        return len(self.lines)

    @property
    def in_band_count(self) -> int:
        return sum(1 for line in self.lines if line.in_band)

    def table_markdown(self) -> str:
        """Just the deterministic comparison table — the part of the
        report that is byte-identical for any ``--jobs`` value."""
        out = io.StringIO()
        out.write(
            f"{self.in_band_count}/{self.total} headline quantities in band.\n\n"
        )
        out.write("| experiment | quantity | paper | measured | in band |\n")
        out.write("|---|---|---|---|---|\n")
        for line in self.lines:
            out.write(line.markdown() + "\n")
        return out.getvalue()

    def markdown(self) -> str:
        out = io.StringIO()
        out.write("# Reproduction report\n\n")
        out.write(self.table_markdown())
        if self.resources:
            out.write("\n## Resource footprint\n\n")
            out.write("| experiment | wall-clock (s) | events fired "
                      "| packets simulated |\n")
            out.write("|---|---:|---:|---:|\n")
            for r in self.resources:
                out.write(
                    f"| {r.experiment} | {r.wall_clock_s:.2f} "
                    f"| {r.events_fired} | {r.packets_offered} |\n"
                )
            out.write(
                f"| **total** "
                f"| {sum(r.wall_clock_s for r in self.resources):.2f} "
                f"| {sum(r.events_fired for r in self.resources)} "
                f"| {sum(r.packets_offered for r in self.resources)} |\n"
            )
        return out.getvalue()


def _report_tasks(scale: float, seed: int) -> list[Task]:
    """Every report experiment as an independent, picklable task.

    Seeds and scale tweaks are exactly what the serial report has
    always used — byte-identical output depends on it.
    """
    return [
        Task("table2", baseline.run,
             {"scale": max(scale * 0.2, 0.01), "seed": seed},
             seed=seed, scale=max(scale * 0.2, 0.01)),
        Task("figure1", signal_vs_distance.run,
             {"scale": scale, "seed": seed + 1}, seed=seed + 1, scale=scale),
        Task("table3", error_vs_level.run,
             {"scale": scale, "seed": seed + 2}, seed=seed + 2, scale=scale),
        Task("table4", walls.run,
             {"scale": scale, "seed": seed + 3}, seed=seed + 3, scale=scale),
        Task("table5", multiroom.run,
             {"scale": scale, "seed": seed + 4}, seed=seed + 4, scale=scale),
        Task("table8", body.run,
             {"scale": scale, "seed": seed + 5}, seed=seed + 5, scale=scale),
        Task("table10", phones_narrowband.run,
             {"scale": scale, "seed": seed + 6}, seed=seed + 6, scale=scale),
        # keep_classified=False: the report reads only the summary
        # tables, so the worker ships no per-packet records at all.
        Task("table11", phones_spread.run,
             {"scale": scale, "seed": seed + 7, "keep_classified": False},
             seed=seed + 7, scale=scale),
        Task("table14", competing.run,
             {"scale": scale, "seed": seed + 8, "include_unusable": True},
             seed=seed + 8, scale=scale),
        Task("fec", fec_eval.run,
             {"scale": scale, "seed": seed + 9, "syndrome_limit": 25},
             seed=seed + 9, scale=scale),
        # MAC statistics need enough frames to wash out the startup
        # transient (all three senders fire at t=0).
        Task("mac", mac_ablation.run,
             {"scale": max(scale, 0.7), "seed": seed + 10},
             seed=seed + 10, scale=max(scale, 0.7)),
        Task("hidden", hidden_terminal.run,
             {"scale": scale, "seed": seed + 11}, seed=seed + 11, scale=scale),
        Task("throughput", throughput.run,
             {"scale": scale, "seed": seed + 12}, seed=seed + 12, scale=scale),
    ]


def build_report(
    scale: float = 0.25, seed: int = 1996, jobs: int = 1
) -> ReproductionReport:
    """Run every experiment at ``scale`` and compare headline numbers.

    Runs under an observability session (reusing the CLI's if one is
    active): each experiment is timed, its per-layer counter deltas are
    folded into a run manifest (written to the telemetry sink when one
    is open), and the report gains a resource-footprint footer.

    ``jobs > 1`` fans the experiments across a process pool; the
    comparison table, the per-experiment events/packets columns, and
    the merged metric counters are byte-identical to ``jobs=1`` (only
    wall-clock readings differ — they are measurements, not results).
    """
    report = ReproductionReport()
    with obs.ensure_metrics():
        git_rev = obs.git_revision()
        results = run_tasks(
            _report_tasks(scale, seed), jobs=jobs, label="report",
            git_rev=git_rev,
        )
        for result in results:
            manifest = result.manifest or {}
            report.resources.append(
                ExperimentResources(
                    experiment=result.name,
                    wall_clock_s=manifest.get(
                        "wall_clock_s", result.wall_clock_s
                    ),
                    events_fired=manifest.get("events_fired", 0),
                    packets_offered=manifest.get("packets_offered", 0),
                )
            )
            _LINE_BUILDERS[result.name](report, result.value, scale)
    return report


# ----------------------------------------------------------------------
# Per-experiment headline lines.  Split out per task so parallel runs
# can apply them in fixed task order whatever the completion order.
# ----------------------------------------------------------------------
def _lines_table2(report: ReproductionReport, r, scale: float) -> None:
    report.add(
        "T2 baseline", "worst trial loss", "<= .07%",
        f"{r.worst_loss_percent:.3f}%", r.worst_loss_percent < 0.2,
    )
    report.add(
        "T2 baseline", "aggregate BER", "~1e-10",
        f"{r.aggregate_ber:.1e}", r.aggregate_ber < 1e-7,
    )


def _lines_figure1(report: ReproductionReport, f1, scale: float) -> None:
    report.add(
        "F1 path loss", "dip at 6 ft", "noticeable",
        f"{f1.dip_depth(6.0):.1f} levels", f1.dip_depth(6.0) > 2.0,
    )
    report.add(
        "F1 path loss", "dip at 30 ft", "noticeable",
        f"{f1.dip_depth(30.0):.1f} levels", f1.dip_depth(30.0) > 2.0,
    )


def _lines_table3(report: ReproductionReport, t3, scale: float) -> None:
    damaged_mean = t3.group("Body damaged").level.mean
    undamaged_mean = t3.group("Undamaged").level.mean
    report.add(
        "T3/F2 error region", "body-damaged level mean", "7.52",
        f"{damaged_mean:.2f}", 5.5 < damaged_mean < 9.0,
    )
    report.add(
        "T3/F2 error region", "undamaged - damaged gap", ">= ~7 levels",
        f"{undamaged_mean - damaged_mean:.1f}",
        undamaged_mean - damaged_mean > 2.0,
    )


def _lines_table4(report: ReproductionReport, t4, scale: float) -> None:
    plaster = t4.wall_cost(("Air 1", "Wall 1"))
    concrete = t4.wall_cost(("Air 2", "Wall 2"))
    report.add("T4 walls", "plaster+mesh cost", "~5 levels",
               f"{plaster:.1f}", 4.0 < plaster < 6.0)
    report.add("T4 walls", "concrete cost", "~2 levels",
               f"{concrete:.1f}", 1.0 < concrete < 3.0)


def _lines_table5(report: ReproductionReport, t5, scale: float) -> None:
    tx5 = t5.metrics("Tx5")
    report.add(
        "T5-7 multiroom", "Tx5 level mean", "9.50",
        f"{t5.level_mean('Tx5'):.2f}", abs(t5.level_mean("Tx5") - 9.5) < 1.5,
    )
    report.add(
        "T5-7 multiroom", "Tx5 damaged packets / 1440", "~25",
        f"{tx5.body_damaged_packets / max(scale, 1e-9):.0f} (scaled)",
        tx5.body_damaged_packets > 0,
    )


def _lines_table8(report: ReproductionReport, t8, scale: float) -> None:
    report.add(
        "T8-9 body", "body cost", "~5.8 levels",
        f"{t8.body_cost_levels:.1f}", 4.5 < t8.body_cost_levels < 7.5,
    )


def _lines_table10(report: ReproductionReport, t10, scale: float) -> None:
    ordering_ok = (
        t10.silence_mean("Bases nearby")
        > t10.silence_mean("Cluster")
        > t10.silence_mean("Handsets nearby")
        > t10.silence_mean("Handsets nearby talking")
        > t10.silence_mean("Phones off")
    )
    report.add(
        "T10 narrowband", "damaged test packets", "0",
        str(t10.total_damaged_test_packets), t10.total_damaged_test_packets == 0,
    )
    report.add(
        "T10 narrowband", "silence ordering (power control)",
        "bases > cluster > handsets > talking > off",
        "reproduced" if ordering_ok else "violated", ordering_ok,
    )


def _lines_table11(report: ReproductionReport, t11, scale: float) -> None:
    stomped = t11.summary("RS base")
    handset = t11.summary("AT&T handset")
    report.add(
        "T11-13 SS phones", "base-near loss", "~52%",
        f"{stomped.loss_percent:.0f}%", 35 < stomped.loss_percent < 70,
    )
    report.add(
        "T11-13 SS phones", "base-near truncation", "100%",
        f"{stomped.truncated_percent:.0f}%", stomped.truncated_percent > 80,
    )
    report.add(
        "T11-13 SS phones", "handset body damage", "59%",
        f"{handset.body_percent:.0f}%", 40 < handset.body_percent < 75,
    )
    report.add(
        "T11-13 SS phones", "remote cluster", "harmless",
        f"{t11.summary('RS remote cluster').loss_percent:.1f}% loss",
        t11.summary("RS remote cluster").loss_percent < 1.0,
    )


def _lines_table14(report: ReproductionReport, t14, scale: float) -> None:
    masked = t14.metrics("With interference")
    silence_delta = t14.silence_mean("With interference") - t14.silence_mean(
        "Without interference"
    )
    report.add(
        "T14 competing", "masked: bit errors", "0",
        str(masked.body_bits_damaged), masked.body_bits_damaged == 0,
    )
    report.add(
        "T14 competing", "silence rise", "+10.3 levels",
        f"+{silence_delta:.1f}", 8.0 < silence_delta < 14.0,
    )
    report.add(
        "T14 competing", "unmasked", "completely unusable",
        f"{t14.unusable_metrics.packet_loss_percent:.0f}% loss",
        t14.unusable_metrics.packet_loss_percent > 50,
    )


def _lines_fec(report: ReproductionReport, x1, scale: float) -> None:
    tx5_fec = x1.outcome("Tx5 attenuation", "4/5", interleaved=True)
    ss_fec = x1.outcome("SS-phone handset", "1/2", interleaved=True)
    report.add(
        "X1 variable FEC", "Tx5 @ 4/5+ilv", "'trivial to correct'",
        f"{100 * tx5_fec.recovery_fraction:.0f}% recovered",
        tx5_fec.recovery_fraction > 0.9,
    )
    report.add(
        "X1 variable FEC", "SS phone @ 1/2", "'might be recoverable'",
        f"{100 * ss_fec.recovery_fraction:.0f}% recovered",
        ss_fec.recovery_fraction > 0.8,
    )


def _lines_mac(report: ReproductionReport, x3, scale: float) -> None:
    report.add(
        "X3 MAC", "blind CSMA/CD delivery", "(rationale for CSMA/CA)",
        f"{100 * x3.outcome('csma_cd_blind').delivery_fraction:.0f}%",
        x3.outcome("csma_cd_blind").delivery_fraction < 0.3,
    )
    report.add(
        "X3 MAC", "CSMA/CA delivery", "near wired",
        f"{100 * x3.outcome('csma_ca').delivery_fraction:.0f}%",
        x3.outcome("csma_ca").delivery_fraction > 0.85,
    )


def _lines_hidden(report: ReproductionReport, x6, scale: float) -> None:
    report.add(
        "X6 hidden terminal", "capture saves stronger sender",
        "conjectured",
        f"{100 * x6.outcome('hidden, receiver off-centre').stronger_intact_fraction:.0f}%",
        x6.outcome("hidden, receiver off-centre").stronger_intact_fraction > 0.7,
    )


def _lines_throughput(report: ReproductionReport, x7, scale: float) -> None:
    report.add(
        "X7 throughput", "FEC/raw crossover level", "inside error region (<8)",
        f"{x7.crossover_level():.1f}", 4.0 <= x7.crossover_level() <= 8.0,
    )


_LINE_BUILDERS = {
    "table2": _lines_table2,
    "figure1": _lines_figure1,
    "table3": _lines_table3,
    "table4": _lines_table4,
    "table5": _lines_table5,
    "table8": _lines_table8,
    "table10": _lines_table10,
    "table11": _lines_table11,
    "table14": _lines_table14,
    "fec": _lines_fec,
    "mac": _lines_mac,
    "hidden": _lines_hidden,
    "throughput": _lines_throughput,
}


def main(
    scale: float = 0.25,
    seed: int = 1996,
    out: str | None = None,
    jobs: int = 1,
) -> ReproductionReport:
    report = build_report(scale=scale, seed=seed, jobs=jobs)
    text = report.markdown()
    if out:
        with open(out, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {out} ({report.in_band_count}/{report.total} in band)")
    else:
        print(text)
    return report


if __name__ == "__main__":
    main()
