"""Extension X5 — the cellular WaveLAN of Section 8, simulated.

"A WaveLAN-like device including multiple spreading sequences for
sharp cell boundaries and transmitter power control to reduce
unnecessary interference seems plausible, and would allow the
construction of [a] truly cellular network.  While it is difficult to
construct large sequence families which simultaneously have low
self-correlation and low cross-correlation, ... the current WaveLAN
seems to have processing gain to spare."

Three parts:

1. **The sequence-family trade-off, quantified** — exhaustive search of
   the 11-chip space: family size vs (self-sidelobe, cross-peak)
   bounds (:mod:`repro.phy.sequences`).
2. **Two simultaneously active cells.**  Cell B's transmitter runs
   continuously while cell A's pair communicates.  Variants:
   ``same code`` (today's WaveLAN — full co-channel interference),
   ``cdma`` (distinct codes: interference attenuated by the family's
   cross-code rejection), and ``cdma + power control`` (cell B also
   turns its power down to the minimum its own link needs).
3. The isolation metric the paper cares about: cell A's packet loss
   and damage rate with cell B active.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import TrialMetrics, analyze_trial
from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.interference.base import EmitterGeometry, InterferenceSource
from repro.phy.errormodel import InterferenceSample
from repro.phy.sequences import SequenceFamily, build_family, family_size_tradeoff
from repro.trace.trial import TrialConfig, run_fast_trial
from repro.units import level_to_dbm

# Geometry: two cells in adjacent rooms; cell A's pair is 8 ft apart,
# cell B's transmitter sits 20 ft from cell A's receiver.
CELL_A_TX = Point(8.0, 0.0)
CELL_A_RX = Point(0.0, 0.0)
CELL_B_TX = Point(-20.0, 0.0)
CELL_B_RX = Point(-26.0, 0.0)  # cell B's own receiver, 6 ft from its TX

PACKETS = 1_440

# Power control: cell B reduces emitted power until its own receiver
# still sees this level (comfortably above the Figure-2 error region).
POWER_CONTROL_TARGET_LEVEL = 16.0

# The 63-chip hypothetical: a Gold-style family of length-63 m-sequences
# has cross peaks around 17, i.e. 20*log10(63/17) ~ 11.4 dB of rejection
# — what "processing gain to spare" could buy with longer codes.
HYPOTHETICAL_63_REJECTION_LEVELS = 5.7

VARIANTS = (
    "same code",
    "cdma (11 chips)",
    "cdma (63-chip hypothetical)",
    "power control only",
    "cdma + power control",
)


def _logistic(x: float) -> float:
    if x > 60.0:
        return 1.0
    if x < -60.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


@dataclass
class CodeDivisionInterferer:
    """A continuously transmitting neighbour cell.

    Its effect on the victim's despreader depends on the *effective*
    interference level: the raw received level minus the cross-code
    rejection (zero when both cells share one code).  Effect curves
    mirror the co-channel overlap model in :mod:`repro.link.channel`.
    """

    position: Point
    emitted_level_at_1ft: float
    rejection_levels: float = 0.0
    duty: float = 1.0
    name: str = "neighbour-cell"

    def received_level(self, rx: Point) -> float:
        return EmitterGeometry(self.position, self.emitted_level_at_1ft).level_at(rx)

    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        raw_level = self.received_level(rx_position)
        active = rng.random() < self.duty
        dbm = level_to_dbm(raw_level) if active else None
        effective = raw_level - self.rejection_levels
        margin = signal_level - effective
        stomp = _logistic((5.0 - margin) / 2.5)
        if not active:
            return InterferenceSample(source_name=self.name, silence_sample_dbm=None)
        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=dbm,
            silence_sample_dbm=dbm,
            jam_ber=2.0e-3 * stomp,
            miss_probability=0.6 * stomp,
            truncate_probability=0.4 * stomp,
            clock_stress=2.0 * stomp,
            bursty=True,
        )


InterferenceSource.register(CodeDivisionInterferer)


@dataclass
class VariantOutcome:
    variant: str
    metrics: TrialMetrics
    neighbour_emitted_level_1ft: float
    rejection_levels: float

    @property
    def damaged_fraction(self) -> float:
        received = max(1, self.metrics.packets_received)
        return (
            self.metrics.body_damaged_packets + self.metrics.packets_truncated
        ) / received


@dataclass
class CdmaResult:
    family: SequenceFamily
    tradeoff: dict[tuple[int, int], int]
    outcomes: list[VariantOutcome] = field(default_factory=list)

    def outcome(self, variant: str) -> VariantOutcome:
        for o in self.outcomes:
            if o.variant == variant:
                return o
        raise KeyError(variant)


def _power_controlled_level(propagation: PropagationModel) -> float:
    """Cell B's emitted level (at 1 ft) after power control.

    Reduce until its own 6 ft link still reads the target level.
    """
    full = 45.3  # same emitted power scale as a stock WaveLAN
    own_link = EmitterGeometry(CELL_B_TX, full).level_at(CELL_B_RX)
    surplus = own_link - POWER_CONTROL_TARGET_LEVEL
    return full - max(0.0, surplus)


def _run_variant(variant: str, packets: int, seed: int) -> VariantOutcome:
    """Cell A's link quality under one neighbour-cell variant.

    The sequence family is deterministic (an exhaustive search, no
    randomness), so each worker rebuilds it rather than pickling it.
    """
    propagation = PropagationModel.office()
    full_power = 45.3
    if variant == "same code" or variant == "power control only":
        rejection = 0.0
    elif variant == "cdma (63-chip hypothetical)":
        rejection = HYPOTHETICAL_63_REJECTION_LEVELS
    else:
        family = build_family(max_self_sidelobe=2, max_cross_peak=7)
        rejection = family.rejection_levels()
    emitted = (
        _power_controlled_level(propagation)
        if variant in ("power control only", "cdma + power control")
        else full_power
    )
    interferer = CodeDivisionInterferer(
        position=CELL_B_TX,
        emitted_level_at_1ft=emitted,
        rejection_levels=rejection,
    )
    output = run_fast_trial(
        TrialConfig(
            name=variant,
            packets=packets,
            seed=seed,
            propagation=propagation,
            tx_position=CELL_A_TX,
            rx_position=CELL_A_RX,
            interference=[interferer],
        )
    )
    return VariantOutcome(
        variant=variant,
        metrics=analyze_trial(output.trace),
        neighbour_emitted_level_1ft=emitted,
        rejection_levels=rejection,
    )


def _aggregate(ctx: PlanContext, values: list) -> CdmaResult:
    family = build_family(max_self_sidelobe=2, max_cross_peak=7)
    return CdmaResult(
        family=family,
        tradeoff=family_size_tradeoff(),
        outcomes=list(values),
    )


@experiment(
    name="cdma",
    artifact="X5",
    description="X5: cellular WaveLAN (CDMA + power control)",
    aggregate=_aggregate,
    render=lambda result, scale: _render(result, scale),
    default_scale=1.0,
    default_seed=95,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per neighbour-cell variant."""
    packets = max(400, int(PACKETS * ctx.scale))
    return [
        TrialPlan(variant, _run_variant, {"variant": variant, "packets": packets})
        for variant in VARIANTS
    ]


def run(scale: float = 1.0, seed: int = 95, jobs: int = 1) -> CdmaResult:
    return ENGINE.run("cdma", scale=scale, seed=seed, jobs=jobs)


def _render(result: CdmaResult, scale: float) -> None:
    print("Extension X5: the Section-8 cellular WaveLAN")
    print("\nSequence-family trade-off (family size at (self, cross) bounds):")
    print("        cross<=3  cross<=5  cross<=7  cross<=9")
    for self_bound in (1, 2, 3, 4):
        row = [result.tradeoff[(self_bound, c)] for c in (3, 5, 7, 9)]
        print(f"  self<={self_bound}: " + "  ".join(f"{v:7d}" for v in row))
    print(f"\nChosen family: {result.family.size} sequences, cross peak "
          f"{result.family.max_cross_peak}/11 -> rejection "
          f"{result.family.rejection_db():.1f} dB "
          f"({result.family.rejection_levels():.1f} levels)")
    print("\nCell A under a continuously active neighbour cell:")
    print(f"{'variant':>28} | {'loss':>6} | {'trunc+dmg':>9} | "
          f"{'neighbour power':>15}")
    for o in result.outcomes:
        print(f"{o.variant:>28} | {o.metrics.packet_loss_percent:5.1f}% | "
              f"{100 * o.damaged_fraction:8.1f}% | "
              f"{o.neighbour_emitted_level_1ft:8.1f} @1ft")
    print("\nVerdict: at 11 chips, code diversity alone buys only ~4 dB — "
          "not enough against a full-power neighbour; even a 63-chip "
          "family falls short.  Power control is the decisive mechanism, "
          "and codes+power together give the paper's 'sharp cell "
          "boundaries'.  This sharpens Section 8's caveat that large "
          "low-cross-correlation families are hard to build.")


def main(scale: float = 1.0, seed: int = 95, jobs: int = 1) -> CdmaResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
