"""Calibrated scenario definitions shared by the experiment modules.

Each scenario fixes the geometry/propagation inputs for one of the
paper's physical setups.  Absolute signal levels differ room to room in
the paper (antenna orientation, construction, furniture), so scenarios
anchor their propagation model at the level the paper reports for a
known distance — the *model* (log-distance + material attenuations +
per-packet processes) is shared; only the anchor is per-room.  See
DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment import (
    CONCRETE_BLOCK_WALL,
    FloorPlan,
    HUMAN_BODY,
    INTERIOR_DOOR,
    METAL_OBSTACLE,
    PLASTER_MESH_WALL,
    Point,
    PropagationModel,
    Wall,
)

# ----------------------------------------------------------------------
# Section 5: in-room office and lecture hall
# ----------------------------------------------------------------------

# Office trials ran at "a signal level of approximately 29.5" (Sec 5.1).
OFFICE_DISTANCE_FT = 8.0


def office_scenario() -> tuple[PropagationModel, Point, Point]:
    """The Table-2 office: two laptops across a desk."""
    propagation = PropagationModel.calibrated(
        level=29.5, at_distance_ft=OFFICE_DISTANCE_FT
    )
    return propagation, Point(0.0, 0.0), Point(OFFICE_DISTANCE_FT, 0.0)


def lecture_hall_scenario() -> PropagationModel:
    """The Figure-1/2/3 lecture hall, with its multipath dips."""
    return PropagationModel.lecture_hall()


# ----------------------------------------------------------------------
# Section 6.1: single wall
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WallTrialSetup:
    """One row of Table 4."""

    name: str
    propagation: PropagationModel
    tx: Point
    rx: Point


def single_wall_scenarios() -> list[WallTrialSetup]:
    """Air/Wall pairs for the two wall materials of Table 4.

    Pair 1: plaster + wire mesh, units 7 ft apart (anchor level 30.58).
    Pair 2: concrete block, 7 ft + ~4 ft extra free space (anchor 28.58).
    """
    rx = Point(0.0, 0.0)

    air1 = PropagationModel.calibrated(level=30.58, at_distance_ft=7.0)
    plan1 = FloorPlan(
        name="plaster office",
        walls=[Wall.between(3.5, -8.0, 3.5, 8.0, PLASTER_MESH_WALL)],
    )
    wall1 = PropagationModel.calibrated(
        level=30.58, at_distance_ft=7.0, floorplan=plan1
    )

    air2 = PropagationModel.calibrated(level=28.58, at_distance_ft=11.0)
    plan2 = FloorPlan(
        name="concrete office",
        walls=[Wall.between(5.5, -8.0, 5.5, 8.0, CONCRETE_BLOCK_WALL)],
    )
    wall2 = PropagationModel.calibrated(
        level=28.58, at_distance_ft=11.0, floorplan=plan2
    )

    return [
        WallTrialSetup("Air 1", air1, Point(7.0, 0.0), rx),
        WallTrialSetup("Wall 1", wall1, Point(7.0, 0.0), rx),
        WallTrialSetup("Air 2", air2, Point(11.0, 0.0), rx),
        WallTrialSetup("Wall 2", wall2, Point(11.0, 0.0), rx),
    ]


# ----------------------------------------------------------------------
# Section 6.2: the Figure-4 multi-room layout
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MultiroomLayout:
    """The concrete-block building of Figure 4.

    The receiver sits at the origin.  Transmitter locations radiate in
    different directions so each path crosses only its own obstacles
    (the paper's floor plan image is not machine-readable; distances and
    obstacle counts follow the prose of Section 6.2):

    * Tx1 — ~9 ft, same office, diagonal (level ≈ 28.6);
    * Tx2 — ~4 ft beyond one concrete wall (level ≈ 26.7);
    * Tx4 — ~45 ft, several walls and a door (level ≈ 13.8);
    * Tx5 — ~30 ft, multiple walls and metal objects (level ≈ 9.5).
    """

    propagation: PropagationModel
    rx: Point
    tx1: Point
    tx2: Point
    tx4: Point
    tx5: Point

    def tx_positions(self) -> dict[str, Point]:
        return {"Tx1": self.tx1, "Tx2": self.tx2, "Tx4": self.tx4, "Tx5": self.tx5}


def multiroom_scenario() -> MultiroomLayout:
    plan = FloorPlan(name="figure-4 building")
    # West: one concrete wall between the office and Tx2's room.
    plan.add_wall(Wall.between(-5.0, -6.0, -5.0, 6.0, CONCRETE_BLOCK_WALL, "w-wall"))
    # North corridor toward Tx4: two concrete walls and a door.
    plan.add_wall(Wall.between(-8.0, 15.0, 8.0, 15.0, CONCRETE_BLOCK_WALL, "n-wall-1"))
    plan.add_wall(Wall.between(-8.0, 32.0, 8.0, 32.0, INTERIOR_DOOR, "n-door"))
    # East toward Tx5: two concrete walls and two metal obstacles + door.
    plan.add_wall(Wall.between(5.0, -3.0, 5.0, 3.0, CONCRETE_BLOCK_WALL, "e-wall-1"))
    plan.add_wall(Wall.between(12.0, -3.0, 12.0, 3.0, CONCRETE_BLOCK_WALL, "e-wall-2"))
    plan.add_wall(Wall.between(18.0, -3.0, 18.0, 3.0, METAL_OBSTACLE, "e-cabinet-1"))
    plan.add_wall(Wall.between(22.0, -3.0, 22.0, 3.0, METAL_OBSTACLE, "e-cabinet-2"))
    plan.add_wall(Wall.between(26.0, -3.0, 26.0, 3.0, INTERIOR_DOOR, "e-door"))

    propagation = PropagationModel.calibrated(
        level=28.58, at_distance_ft=9.0, floorplan=plan
    )
    return MultiroomLayout(
        propagation=propagation,
        rx=Point(0.0, 0.0),
        tx1=Point(7.2, 5.4),  # 9.0 ft diagonal, same office
        tx2=Point(-9.6, 0.0),  # through the west concrete wall
        tx4=Point(0.0, 45.0),  # north, 45 ft, wall + door
        tx5=Point(30.0, 0.0),  # east, 30 ft, walls + metal
    )


# ----------------------------------------------------------------------
# Section 6.3: human body
# ----------------------------------------------------------------------


def body_scenario(with_body: bool) -> tuple[PropagationModel, Point, Point]:
    """56 ft across a hallway, two concrete walls, classroom furniture.

    Anchored so the unobstructed-by-body path reads level ≈ 12.55
    (Table 9, "No body"); the interposed person costs the measured ~6
    levels (:data:`repro.environment.materials.HUMAN_BODY`).
    """
    plan = FloorPlan(name="hallway classrooms")
    plan.add_wall(Wall.between(15.0, -10.0, 15.0, 10.0, CONCRETE_BLOCK_WALL))
    plan.add_wall(Wall.between(40.0, -10.0, 40.0, 10.0, CONCRETE_BLOCK_WALL))
    if with_body:
        plan.add_obstacle(HUMAN_BODY)
    propagation = PropagationModel.calibrated(
        level=12.55 + 2.0 * CONCRETE_BLOCK_WALL.attenuation_levels,
        at_distance_ft=56.0,
        floorplan=plan,
    )
    return propagation, Point(56.0, 0.0), Point(0.0, 0.0)


# ----------------------------------------------------------------------
# Section 7: interference rooms
# ----------------------------------------------------------------------


def narrowband_phone_room() -> tuple[PropagationModel, Point, Point]:
    """Table 10: units ~20 ft apart in a large lecture hall
    (test-packet level ≈ 26.7)."""
    propagation = PropagationModel.calibrated(level=26.71, at_distance_ft=20.0)
    return propagation, Point(20.0, 0.0), Point(0.0, 0.0)


def spread_spectrum_room() -> tuple[PropagationModel, Point, Point]:
    """Tables 11-13: units ~25 ft apart in a conference room
    (test-packet level ≈ 29.6)."""
    propagation = PropagationModel.calibrated(level=29.63, at_distance_ft=25.0)
    return propagation, Point(25.0, 0.0), Point(0.0, 0.0)


# Positions used by the phone trials, relative to the receiver at origin.
PHONE_NEAR = Point(0.4, 0.3)  # "a few inches from the receiver's modem unit"
PHONE_NEAR_2 = Point(-0.4, 0.3)  # the second phone's unit, also clustered
PHONE_ACROSS_HALL = Point(0.0, 30.0)  # "an office across the hall"
PHONE_FAR = Point(11.0, 8.7)  # "approximately 14 feet from the receiver"
