"""Legacy scenario constructors — thin adapters over the registry.

The geometry itself now lives declaratively, exactly once, in
:mod:`repro.scenario.builtin` (see ``scenarios/`` for the exported
YAML); the scenario compiler lowers it to the same propagation models,
floor plans, and positions these constructors used to hand-build.  The
golden tests in ``tests/scenario/test_golden_equivalence.py`` pin the
structural equality, so trial results are byte-identical across the
migration.

These wrappers keep the established call signatures for callers that
predate the registry (examples, benchmarks, the signal-vs-distance and
TCP experiments).  New code should resolve scenarios by name::

    from repro.scenario.registry import REGISTRY
    compiled = REGISTRY.compile("paper/office")
    config = compiled.trial_config(seed=7)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment import Point, PropagationModel

# ----------------------------------------------------------------------
# Section 5: in-room office and lecture hall
# ----------------------------------------------------------------------

# Office trials ran at "a signal level of approximately 29.5" (Sec 5.1).
OFFICE_DISTANCE_FT = 8.0


def office_scenario() -> tuple[PropagationModel, Point, Point]:
    """The Table-2 office: two laptops across a desk."""
    from repro.scenario.registry import REGISTRY

    compiled = REGISTRY.compile("paper/office")
    return (
        compiled.propagation(),
        compiled.station_point("tx"),
        compiled.station_point("rx"),
    )


def lecture_hall_scenario() -> PropagationModel:
    """The Figure-1/2/3 lecture hall, with its multipath dips."""
    from repro.scenario.registry import REGISTRY

    return REGISTRY.compile("paper/lecture-hall").propagation()


# ----------------------------------------------------------------------
# Section 6.1: single wall
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WallTrialSetup:
    """One row of Table 4."""

    name: str
    propagation: PropagationModel
    tx: Point
    rx: Point


def single_wall_scenarios() -> list[WallTrialSetup]:
    """Air/Wall pairs for the two wall materials of Table 4.

    Pair 1: plaster + wire mesh, units 7 ft apart (anchor level 30.58).
    Pair 2: concrete block, 7 ft + ~4 ft extra free space (anchor 28.58).
    """
    from repro.scenario.builtin import TABLE4_SCENARIOS
    from repro.scenario.registry import REGISTRY

    setups = []
    for trial, scenario in TABLE4_SCENARIOS.items():
        compiled = REGISTRY.compile(scenario)
        setups.append(
            WallTrialSetup(
                name=trial,
                propagation=compiled.propagation(),
                tx=compiled.station_point("tx"),
                rx=compiled.station_point("rx"),
            )
        )
    return setups


# ----------------------------------------------------------------------
# Section 6.2: the Figure-4 multi-room layout
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MultiroomLayout:
    """The concrete-block building of Figure 4.

    The receiver sits at the origin.  Transmitter locations radiate in
    different directions so each path crosses only its own obstacles
    (the paper's floor plan image is not machine-readable; distances and
    obstacle counts follow the prose of Section 6.2):

    * Tx1 — ~9 ft, same office, diagonal (level ≈ 28.6);
    * Tx2 — ~4 ft beyond one concrete wall (level ≈ 26.7);
    * Tx4 — ~45 ft, several walls and a door (level ≈ 13.8);
    * Tx5 — ~30 ft, multiple walls and metal objects (level ≈ 9.5).
    """

    propagation: PropagationModel
    rx: Point
    tx1: Point
    tx2: Point
    tx4: Point
    tx5: Point

    def tx_positions(self) -> dict[str, Point]:
        return {"Tx1": self.tx1, "Tx2": self.tx2, "Tx4": self.tx4, "Tx5": self.tx5}


def multiroom_scenario() -> MultiroomLayout:
    from repro.scenario.registry import REGISTRY

    compiled = REGISTRY.compile("paper/multiroom")
    return MultiroomLayout(
        propagation=compiled.propagation(),
        rx=compiled.station_point("rx"),
        tx1=compiled.station_point("Tx1"),
        tx2=compiled.station_point("Tx2"),
        tx4=compiled.station_point("Tx4"),
        tx5=compiled.station_point("Tx5"),
    )


# ----------------------------------------------------------------------
# Section 6.3: human body
# ----------------------------------------------------------------------


def body_scenario(with_body: bool) -> tuple[PropagationModel, Point, Point]:
    """56 ft across a hallway, two concrete walls, classroom furniture.

    Anchored so the unobstructed-by-body path reads level ≈ 12.55
    (Table 9, "No body"); the interposed person costs the measured ~6
    levels (:data:`repro.environment.materials.HUMAN_BODY`).
    """
    from repro.scenario.registry import REGISTRY

    compiled = REGISTRY.compile("paper/body" if with_body else "paper/no-body")
    return (
        compiled.propagation(),
        compiled.station_point("tx"),
        compiled.station_point("rx"),
    )


# ----------------------------------------------------------------------
# Section 7: interference rooms
# ----------------------------------------------------------------------


def narrowband_phone_room() -> tuple[PropagationModel, Point, Point]:
    """Table 10: units ~20 ft apart in a large lecture hall
    (test-packet level ≈ 26.7)."""
    from repro.scenario.registry import REGISTRY

    compiled = REGISTRY.compile("paper/table10-phones-off")
    return (
        compiled.propagation(),
        compiled.station_point("tx"),
        compiled.station_point("rx"),
    )


def spread_spectrum_room() -> tuple[PropagationModel, Point, Point]:
    """Tables 11-13: units ~25 ft apart in a conference room
    (test-packet level ≈ 29.6)."""
    from repro.scenario.registry import REGISTRY

    compiled = REGISTRY.compile("paper/table11-phones-off")
    return (
        compiled.propagation(),
        compiled.station_point("tx"),
        compiled.station_point("rx"),
    )


# Positions used by the phone trials, relative to the receiver at origin
# (canonical values in :mod:`repro.scenario.builtin`).
PHONE_NEAR = Point(0.4, 0.3)  # "a few inches from the receiver's modem unit"
PHONE_NEAR_2 = Point(-0.4, 0.3)  # the second phone's unit, also clustered
PHONE_ACROSS_HALL = Point(0.0, 30.0)  # "an office across the hall"
PHONE_FAR = Point(11.0, 8.7)  # "approximately 14 feet from the receiver"
