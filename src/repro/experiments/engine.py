"""The unified experiment engine: declarative specs, one executor.

Every paper artifact (Tables 2-14, Figures 1-3, the X/V extensions) is
the same shape of campaign: build trial configurations, run them,
classify, aggregate.  Before this module each experiment re-implemented
that loop by hand, so the scaling services (process-pool fan-out,
trace persistence, telemetry manifests) only reached the few modules
that were individually rewired.

The engine factors the campaign shape out:

* :class:`TrialPlan` — one declarative unit of work: a picklable
  module-level function plus its arguments.  The plan does *not* carry
  a seed; the engine derives one.
* :class:`ExperimentSpec` — an experiment: a plan builder, an
  aggregator folding trial values into the experiment's result
  dataclass, a renderer printing the paper-style table, and CLI
  metadata (name, aliases, default scale/seed).
* :func:`experiment` — the decorator that registers a spec; the
  registry drives ``python -m repro`` (``list``, ``all``, per-name
  subcommands) and the reproduction report.
* :class:`ExperimentEngine` — executes any spec with uniform services:
  collision-free per-trial seeds (:func:`repro.simkit.rng.spawn_seed`
  over ``(root seed, experiment, trial)``), ``jobs=N`` fan-out through
  :func:`repro.parallel.run_tasks` (with shared-memory trace handles
  where plans opt in via ``pool_kwargs``), ``trace_dir`` persistence
  for traceable plans, and loud warnings when a flag cannot apply.

Determinism contract: a trial's seed is a pure function of
``(root seed, experiment name, trial label)`` — never of job count,
worker rank, or plan order — so ``jobs=N`` output is byte-identical to
``jobs=1`` and no two trials anywhere in a full ``report`` run share
an RNG stream.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.obs import runtime as _obs_runtime
from repro.parallel import Task, run_tasks
from repro.simkit.rng import spawn_seed


@dataclass(frozen=True)
class TrialPlan:
    """One declarative unit of an experiment's work.

    ``fn`` must be picklable by reference (a module-level callable) and
    ``kwargs`` must carry everything except the seed, which the engine
    derives and injects as ``kwargs[seed_arg]``.  ``seed_label``
    overrides the label used for seed derivation (plans that must share
    channel draws — ablations comparing variants on identical noise —
    run all variants inside one plan instead of sharing a label).

    ``traceable`` plans accept ``trace_dir``/``trace_format`` keyword
    arguments and persist their raw traces; ``pool_kwargs`` are merged
    in only when the run fans out over a process pool (e.g. a
    ``transport`` asking the plan to hand traces back through a
    shared-memory handle instead of pickling records).

    ``scenario`` names the registered :mod:`repro.scenario` topology the
    trial runs in.  The engine resolves every tagged name against the
    scenario registry *before executing anything*, so an unknown
    scenario fails at plan-build time with the list of valid names —
    never mid-trial on a pool worker.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed_arg: Optional[str] = "seed"
    seed_label: Optional[str] = None
    traceable: bool = False
    pool_kwargs: Mapping[str, Any] = field(default_factory=dict)
    scenario: Optional[str] = None

    __test__ = False  # not a pytest test class despite the name


@dataclass(frozen=True)
class PlanContext:
    """Everything a plan builder / aggregator may depend on."""

    scale: float
    seed: int
    jobs: int = 1
    trace_dir: Optional[str] = None
    trace_format: str = "v2"
    extras: Mapping[str, Any] = field(default_factory=dict)

    def extra(self, key: str, default: Any = None) -> Any:
        """An experiment-specific option (e.g. ``syndrome_limit``)."""
        return self.extras.get(key, default)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: plans, aggregation, and CLI metadata.

    ``build_plans(ctx)`` returns the campaign's :class:`TrialPlan` list
    (order defines result order); ``aggregate(ctx, values)`` folds the
    per-plan return values — in plan order, whatever the execution
    order — into the experiment's public result dataclass;
    ``render(result, scale)`` prints the paper-style tables.

    ``report_lines(report, result, scale)`` (optional) appends the
    experiment's paper-vs-measured headline lines to a reproduction
    report; ``report_scale``/``report_extras`` are the per-experiment
    tweaks the report applies (e.g. table2 runs at a fifth of the
    report scale because its paper trial lengths are 70x longer).
    """

    name: str
    artifact: str
    description: str
    build_plans: Callable[[PlanContext], Sequence[TrialPlan]]
    aggregate: Callable[[PlanContext, list], Any]
    render: Optional[Callable[[Any, float], None]] = None
    default_scale: float = 1.0
    default_seed: int = 0
    aliases: tuple[str, ...] = ()
    parallel: bool = True
    traceable: bool = False
    report_lines: Optional[Callable[[Any, Any, float], None]] = None
    report_scale: Optional[Callable[[float], float]] = None
    report_extras: Mapping[str, Any] = field(default_factory=dict)
    module: str = ""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ExperimentSpec] = {}
_ALIASES: dict[str, str] = {}


def experiment(
    *,
    name: str,
    artifact: str,
    description: str,
    aggregate: Callable[[PlanContext, list], Any],
    render: Optional[Callable[[Any, float], None]] = None,
    default_scale: float = 1.0,
    default_seed: int = 0,
    aliases: Sequence[str] = (),
    parallel: bool = True,
    traceable: bool = False,
    report_lines: Optional[Callable[[Any, Any, float], None]] = None,
    report_scale: Optional[Callable[[float], float]] = None,
    report_extras: Optional[Mapping[str, Any]] = None,
) -> Callable:
    """Decorator registering a plan builder as an experiment spec.

    ::

        @experiment(name="table4", artifact="Table 4", ...,
                    aggregate=_aggregate, render=_render)
        def _plans(ctx: PlanContext) -> list[TrialPlan]:
            ...

    The decorated function is returned unchanged; the spec lands in the
    registry under ``name`` (and resolves from every alias).
    """

    def register(build_plans: Callable[[PlanContext], Sequence[TrialPlan]]):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"alias {alias!r} already taken")
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            artifact=artifact,
            description=description,
            build_plans=build_plans,
            aggregate=aggregate,
            render=render,
            default_scale=default_scale,
            default_seed=default_seed,
            aliases=tuple(aliases),
            parallel=parallel,
            traceable=traceable,
            report_lines=report_lines,
            report_scale=report_scale,
            report_extras=dict(report_extras or {}),
            module=build_plans.__module__,
        )
        _ALIASES.update({alias: name for alias in aliases})
        return build_plans

    return register


def load_all() -> None:
    """Import every experiment module, populating the registry."""
    import repro.experiments  # noqa: F401  (imports register the specs)


def canonical_name(name: str) -> str:
    """Resolve an alias ("table6", "figure2") to its carrier spec."""
    load_all()
    return _ALIASES.get(name, name)


def get(name: str) -> ExperimentSpec:
    """Look up a spec by canonical name or alias (KeyError if unknown)."""
    load_all()
    return _REGISTRY[canonical_name(name)]


def specs() -> list[ExperimentSpec]:
    """Every registered spec, in registration (= presentation) order."""
    load_all()
    return list(_REGISTRY.values())


def alias_map() -> dict[str, str]:
    """alias -> canonical name, for CLI resolution and tests."""
    load_all()
    return dict(_ALIASES)


def known_names() -> list[str]:
    """All accepted CLI names: canonical names plus aliases."""
    load_all()
    return list(_REGISTRY) + list(_ALIASES)


def parallel_names() -> list[str]:
    """Experiments with more than one independent trial plan."""
    return [spec.name for spec in specs() if spec.parallel]


def traceable_names() -> list[str]:
    """Experiments whose trials persist raw traces via ``trace_dir``."""
    return [spec.name for spec in specs() if spec.traceable]


def trial_seed(root_seed: int, experiment_name: str, label: str) -> int:
    """The seed the engine hands the named trial — a pure function of
    ``(root seed, experiment, trial label)``, exposed for tests and
    golden pins."""
    return spawn_seed(root_seed, experiment_name, label)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _warn(message: str) -> None:
    """Loud, unmissable stderr warning (a silently ignored flag is a
    bug; see the ``--jobs`` no-op this replaced)."""
    print(f"warning: {message}", file=sys.stderr)


def _validate_plan_scenarios(plans: Sequence[TrialPlan]) -> None:
    """Resolve every plan's ``scenario`` tag before execution starts.

    The registry import is deferred: :mod:`repro.scenario` depends on
    this module for fleet execution, and untagged campaigns should not
    pay for (or require) the scenario layer at all.
    """
    tagged = sorted({p.scenario for p in plans if p.scenario is not None})
    if not tagged:
        return
    from repro.scenario.registry import REGISTRY

    for name in tagged:
        REGISTRY.get(name)  # raises ScenarioError listing valid names


class ExperimentEngine:
    """Executes any registered spec with uniform services."""

    def run(
        self,
        spec_or_name: Union[ExperimentSpec, str],
        *,
        scale: Optional[float] = None,
        seed: Optional[int] = None,
        jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2",
        extras: Optional[Mapping[str, Any]] = None,
        progress: bool = False,
    ) -> Any:
        """Run one experiment and return its aggregated result.

        ``scale``/``seed`` default to the spec's; ``jobs > 1`` fans the
        trial plans over a process pool (results are byte-identical to
        ``jobs=1`` because seeds are derived in the parent);
        ``trace_dir`` persists each traceable trial's raw trace;
        ``progress`` emits per-trial heartbeat telemetry through the
        runner.  Flags that cannot apply warn loudly instead of
        silently no-opping.

        When a trace recorder is active the run produces one
        ``engine.<name>`` span with ``engine.plan`` / ``engine.execute``
        / ``engine.aggregate`` children; every trial's task span (local
        or in a pool worker) parents under ``engine.execute`` through
        :func:`repro.parallel.run_tasks`.
        """
        spec = (
            spec_or_name
            if isinstance(spec_or_name, ExperimentSpec)
            else get(spec_or_name)
        )
        root_seed = spec.default_seed if seed is None else seed
        if trace_dir is not None and not spec.traceable:
            _warn(
                f"experiment '{spec.name}' does not capture packet traces; "
                "--save-traces is ignored"
            )
            trace_dir = None
        ctx = PlanContext(
            scale=spec.default_scale if scale is None else scale,
            seed=root_seed,
            jobs=jobs,
            trace_dir=str(trace_dir) if trace_dir is not None else None,
            trace_format=trace_format or "v2",
            extras=dict(extras or {}),
        )
        with _obs_runtime.trace_span(
            f"engine.{spec.name}", scale=ctx.scale, seed=ctx.seed, jobs=jobs
        ):
            with _obs_runtime.trace_span("engine.plan"):
                plans = list(spec.build_plans(ctx))
            _validate_plan_scenarios(plans)
            if jobs > 1 and len(plans) <= 1:
                _warn(
                    f"experiment '{spec.name}' is a single trial plan; "
                    f"--jobs {jobs} runs it serially"
                )
            if ctx.trace_dir is not None and any(p.traceable for p in plans):
                Path(ctx.trace_dir).mkdir(parents=True, exist_ok=True)
            tasks = [self._task(spec, ctx, plan) for plan in plans]
            # Serial runs emit no trial-level manifests — the
            # orchestration boundary (the CLI, the report runner) emits
            # one per-experiment manifest, and trial records would
            # double-count in ``stats``.  A real fan-out keeps per-trial
            # manifests (in worker shards) plus one merged record,
            # exactly like the pre-engine pool runs.
            fanning = jobs > 1 and len(tasks) > 1
            with _obs_runtime.trace_span("engine.execute", trials=len(tasks)):
                results = run_tasks(
                    tasks,
                    jobs=jobs,
                    label=f"{spec.name}-trials" if fanning else None,
                    task_manifests=fanning,
                    progress=progress,
                )
            with _obs_runtime.trace_span("engine.aggregate"):
                return spec.aggregate(ctx, [r.value for r in results])

    def _task(self, spec: ExperimentSpec, ctx: PlanContext, plan: TrialPlan) -> Task:
        """One plan -> one seeded, picklable task."""
        kwargs = dict(plan.kwargs)
        seed: Optional[int] = None
        if plan.seed_arg is not None:
            seed = trial_seed(ctx.seed, spec.name, plan.seed_label or plan.name)
            kwargs[plan.seed_arg] = seed
        if ctx.trace_dir is not None and plan.traceable:
            kwargs["trace_dir"] = ctx.trace_dir
            kwargs["trace_format"] = ctx.trace_format
        if ctx.jobs > 1:
            kwargs.update(plan.pool_kwargs)
        return Task(plan.name, plan.fn, kwargs, seed=seed, scale=ctx.scale)


#: The process-wide engine every ``run()`` wrapper and the CLI share.
ENGINE = ExperimentEngine()
