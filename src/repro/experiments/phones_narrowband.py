"""Table 10 — narrowband 900 MHz cordless phones (Section 7.2).

Two FM cordless phones in various placements around a WaveLAN pair 20 ft
apart in a lecture hall.  Paper findings to preserve:

* **no damaged test packets in any configuration** and only background
  packet loss — DSSS shrugs narrowband energy off;
* the silence level tells the real story, ordered
  ``bases nearby > cluster > handsets nearby > handsets talking > off``
  — the inversion of "cluster" vs "bases nearby" being the fingerprint
  of the phones' power control;
* outsider packets appear when (and only when) the silence level is low
  enough for the receiver to hear other buildings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import (
    PacketClass,
    SignalStats,
    stats_for_packets,
)
from repro.analysis.tables import render_signal_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.scenario.builtin import TABLE10_SCENARIOS
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

PAPER_PACKETS = 1_440

# Paper Table 10 silence means, for comparison.
PAPER_SILENCE_MEANS = {
    "Phones off": 2.40,
    "Cluster": 15.45,
    "Handsets nearby": 11.33,
    "Handsets nearby talking": 6.11,
    "Bases nearby": 19.32,
}


# Phone placements and outsider traffic per trial now live
# declaratively in the registry (TABLE10_SCENARIOS names them); the
# compiled scenarios are pinned equivalent by the golden tests.
TRIALS = list(PAPER_SILENCE_MEANS)


@dataclass
class NarrowbandResult:
    signal_rows: list[SignalStats] = field(default_factory=list)
    outsider_rows: list[SignalStats] = field(default_factory=list)
    metrics_rows: list[TrialMetrics] = field(default_factory=list)

    def silence_mean(self, trial: str) -> float:
        for row in self.signal_rows:
            if row.group == trial and row.silence is not None:
                return row.silence.mean
        raise KeyError(trial)

    def metrics(self, trial: str) -> TrialMetrics:
        for row in self.metrics_rows:
            if row.name == trial:
                return row
        raise KeyError(trial)

    @property
    def total_damaged_test_packets(self) -> int:
        return sum(
            m.body_damaged_packets + m.packets_truncated + m.wrapper_damaged
            for m in self.metrics_rows
        )


def _run_trial(
    trial: str,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> tuple[TrialMetrics, SignalStats, SignalStats | None]:
    """One Table-10 configuration, self-contained and picklable."""
    from repro.scenario.registry import REGISTRY

    config = REGISTRY.compile(TABLE10_SCENARIOS[trial]).trial_config(
        name=trial, packets=packets, seed=seed
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, trial, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    outsiders = classified.by_class(
        PacketClass.OUTSIDER_UNDAMAGED, PacketClass.OUTSIDER_DAMAGED
    )
    return (
        metrics_from_classified(classified),
        stats_for_packets(trial, classified.test_packets),
        stats_for_packets(f"{trial} (outsiders)", outsiders)
        if outsiders
        else None,
    )


def _aggregate(ctx: PlanContext, values: list) -> NarrowbandResult:
    result = NarrowbandResult()
    for metrics, signal_row, outsider_row in values:
        result.metrics_rows.append(metrics)
        result.signal_rows.append(signal_row)
        if outsider_row is not None:
            result.outsider_rows.append(outsider_row)
    return result


def _render(result: NarrowbandResult, scale: float) -> None:
    print("Table 10: The effects of narrowband 900 MHz cordless phones "
          f"(scale={scale:g})")
    print(render_signal_table(result.signal_rows, label="Trial"))
    if result.outsider_rows:
        print("\nOutsiders:")
        print(render_signal_table(result.outsider_rows, label="Trial"))
    print(f"\nDamaged test packets across all trials: "
          f"{result.total_damaged_test_packets} (paper: 0)")
    print("Paper silence means:", PAPER_SILENCE_MEANS)


def _report_lines(report, result: NarrowbandResult, scale: float) -> None:
    ordering_ok = (
        result.silence_mean("Bases nearby")
        > result.silence_mean("Cluster")
        > result.silence_mean("Handsets nearby")
        > result.silence_mean("Handsets nearby talking")
        > result.silence_mean("Phones off")
    )
    report.add(
        "T10 narrowband", "damaged test packets", "0",
        str(result.total_damaged_test_packets),
        result.total_damaged_test_packets == 0,
    )
    report.add(
        "T10 narrowband", "silence ordering (power control)",
        "bases > cluster > handsets > talking > off",
        "reproduced" if ordering_ok else "violated", ordering_ok,
    )


@experiment(
    name="table10",
    artifact="Table 10",
    description="Table 10: narrowband phones",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=710,
    traceable=True,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per Table-10 phone configuration."""
    packets = max(400, int(PAPER_PACKETS * ctx.scale))
    return [
        TrialPlan(
            trial,
            _run_trial,
            {"trial": trial, "packets": packets},
            traceable=True,
            scenario=TABLE10_SCENARIOS[trial],
        )
        for trial in TRIALS
    ]


def run(scale: float = 1.0, seed: int = 710, jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2") -> NarrowbandResult:
    """Run the five Table-10 configurations.

    The trials are mutually independent, so ``jobs > 1`` fans them over
    a process pool; the assembled result is identical to a serial run.
    """
    return ENGINE.run(
        "table10", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(scale: float = 1.0, seed: int = 710, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> NarrowbandResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
