"""Ablation X3 — why WaveLAN runs CSMA/CA instead of CSMA/CD (Section 2).

"In CSMA/CD, a station which becomes ready to transmit while the medium
is busy will make its first transmission attempt as soon as the medium
is free, based on the optimistic assumption that it is the only waiting
station.  If this assumption is wrong, all waiting stations will
quickly learn that when they sense a collision.  Since WaveLAN cannot
sense collisions, they result in packet losses ... CSMA/CA attempts to
avoid collision losses by treating a busy medium as a collision."

Three MAC variants contend on the same saturated three-sender channel:

* ``csma_ca`` — WaveLAN's protocol: random delay after busy medium;
* ``csma_cd_wired`` — the Ethernet baseline with *working* collision
  detection (physically impossible on this radio; included as the
  wired-world reference);
* ``csma_cd_blind`` — CSMA/CD optimism on a radio that cannot detect:
  the synchronized post-busy pile-up turns directly into packet loss.

The receiver-side figure of merit is intact test frames delivered per
frame offered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.link.channel import RadioChannel
from repro.link.station import LinkStation
from repro.mac.csma import CsmaCaMac, CsmaCdMac, MacStats
from repro.simkit.simulator import Simulator

VARIANTS = ("csma_ca", "csma_cd_wired", "csma_cd_blind")
SENDERS = 3
FRAMES_PER_SENDER = 120
FRAME_SIZE = 1072


@dataclass
class VariantOutcome:
    variant: str
    frames_offered: int
    frames_intact: int
    collisions: int
    drops: int
    sim_time_s: float

    @property
    def delivery_fraction(self) -> float:
        if self.frames_offered == 0:
            return 0.0
        return self.frames_intact / self.frames_offered

    @property
    def goodput_bps(self) -> float:
        if self.sim_time_s <= 0:
            return 0.0
        return self.frames_intact * FRAME_SIZE * 8 / self.sim_time_s


@dataclass
class MacAblationResult:
    outcomes: list[VariantOutcome] = field(default_factory=list)

    def outcome(self, variant: str) -> VariantOutcome:
        for o in self.outcomes:
            if o.variant == variant:
                return o
        raise KeyError(variant)


def _sender_payload(sender_index: int, frame_index: int) -> bytes:
    """A recognizable per-sender frame (marker + padding)."""
    marker = bytes([0xA0 + sender_index]) * 8 + frame_index.to_bytes(4, "big")
    return marker + bytes(FRAME_SIZE - len(marker))


def _run_variant(variant: str, scale: float, seed: int) -> VariantOutcome:
    sim = Simulator(seed=seed)
    # Everyone in one room: all senders hear each other (no hidden
    # terminals in this ablation) and the receiver hears everyone.
    propagation = PropagationModel.office()
    channel = RadioChannel(
        sim,
        propagation,
        collision_detection_enabled=(variant == "csma_cd_wired"),
    )
    receiver = LinkStation.tracing_station(99, Point(0.0, 0.0))
    channel.add_station(receiver)

    frames_per_sender = max(20, int(FRAMES_PER_SENDER * scale))
    macs = []
    for sender_index in range(SENDERS):
        station = LinkStation.tracing_station(
            sender_index + 1, Point(4.0 + sender_index, 3.0 - sender_index)
        )
        channel.add_station(station)
        rng = sim.rng.stream(f"mac.{sender_index}")
        if variant == "csma_ca":
            mac = CsmaCaMac(sim, channel, station.station_id, rng)
        else:
            mac = CsmaCdMac(sim, channel, station.station_id, rng)
        for frame_index in range(frames_per_sender):
            mac.enqueue(_sender_payload(sender_index, frame_index))
        macs.append(mac)

    sim.run()

    offered = SENDERS * frames_per_sender
    # Intact frames: full length and byte-exact sender payloads.
    sent_payloads = {
        _sender_payload(s, f)
        for s in range(SENDERS)
        for f in range(frames_per_sender)
    }
    intact = sum(1 for f in receiver.log if f.data in sent_payloads)
    stats = MacStats()
    for mac in macs:
        stats.attempts += mac.stats.attempts
        stats.collisions += mac.stats.collisions
        stats.drops += mac.stats.drops
    return VariantOutcome(
        variant=variant,
        frames_offered=offered,
        frames_intact=intact,
        collisions=stats.collisions,
        drops=stats.drops,
        sim_time_s=sim.now,
    )


def _aggregate(ctx: PlanContext, values: list) -> MacAblationResult:
    return MacAblationResult(outcomes=list(values))


def _render(result: MacAblationResult, scale: float) -> None:
    print("Ablation X3: MAC protocol under 3-sender contention "
          f"(scale={scale:g})")
    print(f"{'variant':>14} | {'offered':>7} | {'intact':>6} | "
          f"{'delivery':>8} | {'collisions':>10} | {'goodput':>10}")
    for o in result.outcomes:
        print(f"{o.variant:>14} | {o.frames_offered:7d} | {o.frames_intact:6d} | "
              f"{100 * o.delivery_fraction:7.1f}% | {o.collisions:10d} | "
              f"{o.goodput_bps / 1e6:7.2f} Mb/s")


def _report_lines(report, result: MacAblationResult, scale: float) -> None:
    report.add(
        "X3 MAC", "blind CSMA/CD delivery", "(rationale for CSMA/CA)",
        f"{100 * result.outcome('csma_cd_blind').delivery_fraction:.0f}%",
        result.outcome("csma_cd_blind").delivery_fraction < 0.3,
    )
    report.add(
        "X3 MAC", "CSMA/CA delivery", "near wired",
        f"{100 * result.outcome('csma_ca').delivery_fraction:.0f}%",
        result.outcome("csma_ca").delivery_fraction > 0.85,
    )


def _report_scale(scale: float) -> float:
    # MAC statistics need enough frames to wash out the startup
    # transient (all three senders fire at t=0).
    return max(scale, 0.7)


@experiment(
    name="mac",
    artifact="X3",
    description="X3: CSMA/CA vs CSMA/CD ablation",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=83,
    report_lines=_report_lines,
    report_scale=_report_scale,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per MAC variant on the saturated channel."""
    return [
        TrialPlan(variant, _run_variant, {"variant": variant, "scale": ctx.scale})
        for variant in VARIANTS
    ]


def run(scale: float = 1.0, seed: int = 83, jobs: int = 1) -> MacAblationResult:
    return ENGINE.run("mac", scale=scale, seed=seed, jobs=jobs)


def main(scale: float = 1.0, seed: int = 83, jobs: int = 1) -> MacAblationResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
