"""V1 — internal validation: the two trial paths must agree.

The library has two ways to run a point-to-point trial:

* the vectorized **fast path** (:func:`repro.trace.trial.run_fast_trial`)
  used by the long measurement experiments, and
* the event-driven **MAC path** (:func:`repro.trace.trial.run_mac_trial`)
  used by the contention experiments.

On a contention-free scenario they model the same physics and must
produce statistically indistinguishable traces.  This experiment runs
both on identical geometry and compares delivery rate and the three
signal-metric means — a methodological self-check that the fast path
is a faithful shortcut, not a different model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import classify_trace
from repro.analysis.signalstats import stats_for_packets
from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.trace.trial import TrialConfig, run_fast_trial, run_mac_trial

# Scenarios spanning clean to error region.
SCENARIOS = (
    ("office", 8.0, 29.5),
    ("multi-wall", 8.0, 13.8),
    ("marginal", 8.0, 8.5),
)
PACKETS = 1_200


@dataclass
class PathComparison:
    scenario: str
    packets: int
    fast_delivery: float
    mac_delivery: float
    fast_level_mean: float
    mac_level_mean: float
    fast_quality_mean: float
    mac_quality_mean: float
    fast_silence_mean: float
    mac_silence_mean: float

    @property
    def delivery_gap(self) -> float:
        return abs(self.fast_delivery - self.mac_delivery)

    @property
    def level_gap(self) -> float:
        return abs(self.fast_level_mean - self.mac_level_mean)

    @property
    def quality_gap(self) -> float:
        return abs(self.fast_quality_mean - self.mac_quality_mean)


@dataclass
class ValidationResult:
    comparisons: list[PathComparison] = field(default_factory=list)

    def comparison(self, scenario: str) -> PathComparison:
        for c in self.comparisons:
            if c.scenario == scenario:
                return c
        raise KeyError(scenario)

    @property
    def worst_delivery_gap(self) -> float:
        return max(c.delivery_gap for c in self.comparisons)

    @property
    def worst_level_gap(self) -> float:
        return max(c.level_gap for c in self.comparisons)


def _trace_stats(trace):
    classified = classify_trace(trace)
    stats = stats_for_packets("all", classified.test_packets)
    return (
        len(classified.test_packets),
        stats.level.mean if stats.level else 0.0,
        stats.quality.mean if stats.quality else 0.0,
        stats.silence.mean if stats.silence else 0.0,
    )


def _compare_paths(
    scenario: str, distance_ft: float, anchor_level: float, packets: int,
    seed: int,
) -> PathComparison:
    """Run both trial paths on one geometry and compare, picklable."""
    propagation = PropagationModel.calibrated(
        level=anchor_level, at_distance_ft=distance_ft
    )
    config = TrialConfig(
        name=f"validate-{scenario}",
        packets=packets,
        seed=seed,
        propagation=propagation,
        tx_position=Point(0.0, 0.0),
        rx_position=Point(distance_ft, 0.0),
    )
    fast = run_fast_trial(config)
    mac_output, channel = run_mac_trial(config)

    fast_received, fast_level, fast_quality, fast_silence = _trace_stats(
        fast.trace
    )
    mac_received, mac_level, mac_quality, mac_silence = _trace_stats(
        mac_output.trace
    )
    return PathComparison(
        scenario=scenario,
        packets=packets,
        fast_delivery=fast_received / packets,
        mac_delivery=mac_received / packets,
        fast_level_mean=fast_level,
        mac_level_mean=mac_level,
        fast_quality_mean=fast_quality,
        mac_quality_mean=mac_quality,
        fast_silence_mean=fast_silence,
        mac_silence_mean=mac_silence,
    )


def _aggregate(ctx: PlanContext, values: list) -> ValidationResult:
    return ValidationResult(comparisons=list(values))


@experiment(
    name="validate",
    artifact="V1",
    description="V1: fast path vs MAC path validation",
    aggregate=_aggregate,
    render=lambda result, scale: _render(result, scale),
    default_scale=1.0,
    default_seed=111,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per validation scenario."""
    packets = max(300, int(PACKETS * ctx.scale))
    return [
        TrialPlan(
            scenario,
            _compare_paths,
            {
                "scenario": scenario,
                "distance_ft": distance_ft,
                "anchor_level": anchor_level,
                "packets": packets,
            },
        )
        for scenario, distance_ft, anchor_level in SCENARIOS
    ]


def run(scale: float = 1.0, seed: int = 111, jobs: int = 1) -> ValidationResult:
    return ENGINE.run("validate", scale=scale, seed=seed, jobs=jobs)


def _render(result: ValidationResult, scale: float) -> None:
    print("V1: fast path vs event-driven MAC path (contention-free)")
    print(f"{'scenario':>12} | {'delivery f/m':>14} | {'level f/m':>14} | "
          f"{'quality f/m':>14}")
    for c in result.comparisons:
        print(f"{c.scenario:>12} | {100 * c.fast_delivery:5.1f}/"
              f"{100 * c.mac_delivery:5.1f}% | "
              f"{c.fast_level_mean:6.2f}/{c.mac_level_mean:6.2f} | "
              f"{c.fast_quality_mean:6.2f}/{c.mac_quality_mean:6.2f}")
    print(f"\nworst gaps: delivery {100 * result.worst_delivery_gap:.2f}pp, "
          f"level {result.worst_level_gap:.2f} units")


def main(scale: float = 1.0, seed: int = 111, jobs: int = 1) -> ValidationResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
