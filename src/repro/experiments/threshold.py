"""Figure 3 — effects of the receive threshold (Section 5.3), plus the
threshold-margin ablation (DESIGN.md X2).

One station (the "enemy") transmits continuously; the "victim" sweeps
its receive threshold through a window around the enemy's received
signal level.  Two curves:

* **% of enemy packets filtered out** — rises from ~0 % when the
  threshold sits at the received level to 100 % above it;
* **% of victim transmissions completed without collision** — the same
  sigmoid, because a masked carrier is invisible to the Ethernet chip.

Paper findings: the threshold is not perfect (per-packet level jitter
smears the transition over several units — "it is wise to allow a
margin of several units"), but it filters *cleanly*: no damaged or
truncated remnants leak through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import PacketClass, classify_trace
from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.link.channel import RadioChannel
from repro.link.station import LinkStation
from repro.mac.csma import CsmaCaMac
from repro.phy.modem import ModemConfig
from repro.simkit.simulator import Simulator
from repro.trace.persist import save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

# The enemy sits across the hall: received level ~15 at the victim.
ENEMY_LEVEL = 15.0
THRESHOLD_SWEEP = list(range(10, 22))

# Paper sample sizes: ">= 1,400 transmitted packets" per filtering
# point, ">= 10,000 transmission attempts" per collision point.
PACKETS_PER_POINT = 1_400
ATTEMPTS_PER_POINT = 10_000


@dataclass
class ThresholdPoint:
    """One x-position of the Figure-3 sweep."""

    threshold: int
    enemy_packets_sent: int
    enemy_packets_received: int
    damaged_leaked: int
    attempts: int
    collision_free: int

    @property
    def filtered_fraction(self) -> float:
        if self.enemy_packets_sent == 0:
            return 0.0
        return 1.0 - self.enemy_packets_received / self.enemy_packets_sent

    @property
    def collision_free_fraction(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.collision_free / self.attempts


@dataclass
class ThresholdResult:
    points: list[ThresholdPoint] = field(default_factory=list)
    observed_level_min: int = 0
    observed_level_max: int = 0

    def margin_for_full_filtering(self) -> int:
        """Units above the max observed level before filtering hits 100 %
        — the ablation's headline number ("a margin of several units")."""
        for point in self.points:
            if (
                point.threshold > self.observed_level_max
                and point.filtered_fraction >= 1.0
            ):
                return point.threshold - self.observed_level_max
        return max(
            (p.threshold for p in self.points), default=0
        ) - self.observed_level_max


def _filtering_point(
    threshold: int,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> tuple[int, int, int, int, int]:
    """Enemy→victim delivery at one threshold (contention-free path)."""
    config = TrialConfig(
        name=f"threshold-{threshold}",
        packets=packets,
        seed=seed,
        mean_level=ENEMY_LEVEL,
        modem_config=ModemConfig(receive_threshold=threshold),
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, config.name, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    received = len(classified.test_packets)
    damaged = sum(
        1
        for p in classified.test_packets
        if p.packet_class is not PacketClass.UNDAMAGED
    )
    levels = [p.record.status.signal_level for p in classified.test_packets]
    level_min = min(levels) if levels else 0
    level_max = max(levels) if levels else 0
    return received, damaged, level_min, level_max, output.dispositions.missed


def _collision_point(threshold: int, attempts: int, seed: int) -> tuple[int, int]:
    """Victim transmission attempts against a continuous enemy carrier.

    Event-driven: the enemy MAC (threshold 35, never defers) saturates
    the channel; the victim MAC counts busy-medium collisions.
    """
    sim = Simulator(seed=seed)
    propagation = PropagationModel.calibrated(level=ENEMY_LEVEL, at_distance_ft=30.0)
    channel = RadioChannel(sim, propagation)

    victim = LinkStation.tracing_station(
        1, Point(0.0, 0.0), ModemConfig(receive_threshold=threshold)
    )
    enemy = LinkStation.tracing_station(
        2, Point(30.0, 0.0), ModemConfig(receive_threshold=35)
    )
    # The victim transmits toward a third, silent station.
    sink = LinkStation.tracing_station(3, Point(3.0, 0.0))
    for station in (victim, enemy, sink):
        channel.add_station(station)

    enemy_mac = CsmaCaMac(sim, channel, 2, sim.rng.stream("mac.enemy"))
    victim_mac = CsmaCaMac(sim, channel, 1, sim.rng.stream("mac.victim"))

    payload = bytes(1072)

    def keep_enemy_busy() -> None:
        while enemy_mac.queue_length < 4:
            enemy_mac.enqueue(payload)
        sim.schedule(0.004, keep_enemy_busy)

    victim_sent = 0

    def feed_victim() -> None:
        nonlocal victim_sent
        if victim_mac.stats.attempts >= attempts:
            sim.stop()
            return
        if victim_mac.queue_length < 2:
            victim_mac.enqueue(payload)
            victim_sent += 1
        sim.schedule(0.0006, feed_victim)

    sim.schedule(0.0, keep_enemy_busy)
    sim.schedule(0.0, feed_victim)
    sim.run(max_events=attempts * 60)

    stats = victim_mac.stats
    return stats.attempts, stats.attempts - stats.collisions


def _aggregate(ctx: PlanContext, values: list) -> ThresholdResult:
    include_collisions = ctx.extra("include_collisions", True)
    packets = max(200, int(PACKETS_PER_POINT * ctx.scale))
    filter_values = values[: len(THRESHOLD_SWEEP)]
    collision_values = (
        values[len(THRESHOLD_SWEEP):]
        if include_collisions
        else [(0, 0)] * len(THRESHOLD_SWEEP)
    )
    result = ThresholdResult()
    observed_min, observed_max = 99, 0
    for threshold, filtering, collisions in zip(
        THRESHOLD_SWEEP, filter_values, collision_values
    ):
        received, damaged, level_min, level_max, _ = filtering
        if received:
            observed_min = min(observed_min, level_min)
            observed_max = max(observed_max, level_max)
        total_attempts, collision_free = collisions
        result.points.append(
            ThresholdPoint(
                threshold=threshold,
                enemy_packets_sent=packets,
                enemy_packets_received=received,
                damaged_leaked=damaged,
                attempts=total_attempts,
                collision_free=collision_free,
            )
        )
    result.observed_level_min = observed_min if observed_min != 99 else 0
    result.observed_level_max = observed_max
    return result


def _render(result: ThresholdResult, scale: float) -> None:
    print("Figure 3: Effects of receive threshold "
          f"(enemy level ~{ENEMY_LEVEL:.0f}; observed "
          f"{result.observed_level_min}-{result.observed_level_max}; "
          f"scale={scale:g})")
    print(f"{'thresh':>7} | {'filtered%':>9} | {'collision-free%':>15} | "
          f"{'damaged leaked':>14}")
    for p in result.points:
        print(f"{p.threshold:7d} | {100 * p.filtered_fraction:9.1f} | "
              f"{100 * p.collision_free_fraction:15.1f} | "
              f"{p.damaged_leaked:14d}")
    print(f"\nMargin above max observed level for 100% filtering: "
          f"{result.margin_for_full_filtering()} units "
          "(paper: 'wise to allow a margin of several units')")
    total_leaked = sum(p.damaged_leaked for p in result.points)
    print(f"Damaged/truncated packets leaked through the filter: "
          f"{total_leaked} (paper: 0 — clean filtering)")


@experiment(
    name="figure3",
    artifact="Figure 3",
    description="Figure 3: receive threshold sweep",
    aggregate=_aggregate,
    render=_render,
    default_scale=0.15,
    default_seed=53,
    traceable=True,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """Filtering plans for every threshold, then collision plans."""
    packets = max(200, int(PACKETS_PER_POINT * ctx.scale))
    attempts = max(500, int(ATTEMPTS_PER_POINT * ctx.scale))
    plans = [
        TrialPlan(
            f"filter-{threshold}",
            _filtering_point,
            {"threshold": threshold, "packets": packets},
            traceable=True,
        )
        for threshold in THRESHOLD_SWEEP
    ]
    if ctx.extra("include_collisions", True):
        plans.extend(
            TrialPlan(
                f"collide-{threshold}",
                _collision_point,
                {"threshold": threshold, "attempts": attempts},
            )
            for threshold in THRESHOLD_SWEEP
        )
    return plans


def run(
    scale: float = 1.0,
    seed: int = 53,
    include_collisions: bool = True,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> ThresholdResult:
    return ENGINE.run(
        "figure3", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
        extras={"include_collisions": include_collisions},
    )


def main(scale: float = 0.2, seed: int = 53, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> ThresholdResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
