"""Extension X7 — effective throughput across the error environment.

The paper's motivation (Section 1): "high error rates can significantly
reduce the effective bandwidth available to users, so controlling the
error rate is critical."  The paper measures error *rates*; this
experiment converts them into what an application feels — goodput —
across the signal-level range, under two delivery policies:

* **raw** — a damaged packet is worthless (UDP-style: any body error
  spoils the datagram); goodput counts only undamaged packets;
* **fec 4/5 + interleave** — the Section-8 fix: body errors up to the
  code's strength are repaired; only losses/truncations (and decode
  failures) cost throughput, at 25 % airtime overhead.

The sender offers the paper's host-limited ~1.4 Mb/s of 1024-byte
bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.classify import PacketClass, classify_trace
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RcpcCodec
from repro.framing.testpacket import BODY_BITS
from repro.trace.trial import TrialConfig, run_fast_trial

OFFERED_RATE_BPS = 1_400_000.0
LEVELS = (29.5, 13.8, 11.0, 9.5, 8.0, 7.0, 6.0, 5.0)
PACKETS_PER_LEVEL = 1_000
FEC_RATE = "4/5"
FEC_INFO_BITS = 1_024


@dataclass
class ThroughputPoint:
    level: float
    packets_sent: int
    undamaged: int
    body_damaged: int
    truncated: int
    lost: int
    fec_recovered: int

    @property
    def raw_delivery_fraction(self) -> float:
        return self.undamaged / self.packets_sent

    @property
    def raw_goodput_bps(self) -> float:
        """Undamaged body bits delivered per offered-airtime second."""
        return OFFERED_RATE_BPS * self.raw_delivery_fraction

    @property
    def fec_delivery_fraction(self) -> float:
        """Fraction of packets delivering their (smaller) FEC payload."""
        return (self.undamaged + self.fec_recovered) / self.packets_sent

    def fec_goodput_bps(self, overhead_fraction: float) -> float:
        """Offered rate × delivery × (1 / (1 + overhead))."""
        return (
            OFFERED_RATE_BPS
            * self.fec_delivery_fraction
            / (1.0 + overhead_fraction)
        )


@dataclass
class ThroughputResult:
    points: list[ThroughputPoint] = field(default_factory=list)
    fec_overhead: float = 0.25

    def point(self, level: float) -> ThroughputPoint:
        for p in self.points:
            if p.level == level:
                return p
        raise KeyError(level)

    def crossover_level(self) -> float:
        """Highest level at which FEC out-performs raw goodput.

        Above it, FEC is "useless overhead" (Section 8); below it, the
        redundancy pays for itself.
        """
        best = 0.0
        for p in self.points:
            raw = OFFERED_RATE_BPS * p.raw_delivery_fraction
            fec = p.fec_goodput_bps(self.fec_overhead)
            if fec > raw:
                best = max(best, p.level)
        return best


def _fec_recovers(syndrome, codec, interleaver, info, transmitted) -> bool:
    scale = len(transmitted) / BODY_BITS
    positions = np.unique((syndrome.body_bit_positions * scale).astype(np.int64))
    positions = positions[positions < len(transmitted)]
    stream = interleaver.scramble(transmitted).copy()
    stream[positions] ^= 1
    return bool(np.array_equal(codec.decode(interleaver.unscramble(stream)), info))


def _run_level(level: float, packets: int, seed: int) -> ThroughputPoint:
    """One operating point: trial, classification, FEC replay."""
    codec = RcpcCodec(FEC_RATE)
    interleaver = BlockInterleaver(32, 64)
    rng = np.random.default_rng(seed)
    info = rng.integers(0, 2, FEC_INFO_BITS).astype(np.uint8)
    transmitted = codec.encode(info)

    output = run_fast_trial(
        TrialConfig(
            name=f"tp-{level}", packets=packets, seed=seed,
            mean_level=level,
        )
    )
    classified = classify_trace(output.trace)
    undamaged = len(classified.by_class(PacketClass.UNDAMAGED))
    damaged = classified.by_class(PacketClass.BODY_DAMAGED)
    truncated = len(classified.by_class(PacketClass.TRUNCATED))
    recovered = sum(
        1
        for p in damaged
        if p.syndrome is not None
        and _fec_recovers(p.syndrome, codec, interleaver, info, transmitted)
    )
    return ThroughputPoint(
        level=level,
        packets_sent=packets,
        undamaged=undamaged,
        body_damaged=len(damaged),
        truncated=truncated,
        lost=packets - len(classified.test_packets),
        fec_recovered=recovered,
    )


def _aggregate(ctx: PlanContext, values: list) -> ThroughputResult:
    return ThroughputResult(
        points=list(values), fec_overhead=RcpcCodec(FEC_RATE).overhead
    )


def _report_lines(report, result: ThroughputResult, scale: float) -> None:
    report.add(
        "X7 throughput", "FEC/raw crossover level", "inside error region (<8)",
        f"{result.crossover_level():.1f}",
        4.0 <= result.crossover_level() <= 8.0,
    )


@experiment(
    name="throughput",
    artifact="X7",
    description="X7: goodput across the error environment",
    aggregate=_aggregate,
    render=lambda result, scale: _render(result, scale),
    default_scale=1.0,
    default_seed=99,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per signal level."""
    packets = max(300, int(PACKETS_PER_LEVEL * ctx.scale))
    return [
        TrialPlan(
            f"level-{level:g}",
            _run_level,
            {"level": level, "packets": packets},
        )
        for level in LEVELS
    ]


def run(scale: float = 1.0, seed: int = 99, jobs: int = 1) -> ThroughputResult:
    return ENGINE.run("throughput", scale=scale, seed=seed, jobs=jobs)


def _render(result: ThroughputResult, scale: float) -> None:
    print("Extension X7: effective throughput across the error environment "
          f"(offered {OFFERED_RATE_BPS / 1e6:.1f} Mb/s)")
    print(f"{'level':>6} | {'loss%':>6} | {'dmg%':>6} | {'raw Mb/s':>8} | "
          f"{'fec {0} Mb/s':>12}".format(FEC_RATE))
    for p in result.points:
        raw = OFFERED_RATE_BPS * p.raw_delivery_fraction / 1e6
        fec = p.fec_goodput_bps(result.fec_overhead) / 1e6
        marker = "  << FEC wins" if fec > raw else ""
        print(f"{p.level:6.1f} | {100 * p.lost / p.packets_sent:6.2f} | "
              f"{100 * p.body_damaged / p.packets_sent:6.2f} | "
              f"{raw:8.3f} | {fec:10.3f}{marker}")
    print(f"\nFEC/raw goodput crossover at level ~{result.crossover_level():.1f} "
          "— above it FEC is 'useless overhead in most situations' "
          "(Section 8); below it the redundancy pays.")


def main(scale: float = 1.0, seed: int = 99, jobs: int = 1) -> ThroughputResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
