"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(scale=..., seed=...) -> <Result dataclass>``
returning structured data, and ``main()`` printing the paper-style
table.  ``scale`` multiplies the paper's packet counts (1.0 = the
paper's trial lengths; tests use small scales, benchmarks moderate
ones).  The experiment ↔ module ↔ benchmark mapping lives in DESIGN.md
§4 and EXPERIMENTS.md.

Each module registers one :class:`repro.experiments.engine.ExperimentSpec`
at import time via the ``@experiment`` decorator; importing this package
populates the registry (``engine.load_all()`` does exactly that).  The
import order below fixes the canonical registry order: paper artifacts
first (tables, then figures interleaved as in the paper), then
extensions/ablations, then internal validation.
"""

from repro.experiments import scenarios

# Registry population — each import registers the module's spec.
from repro.experiments import baseline  # table2
from repro.experiments import signal_vs_distance  # figure1
from repro.experiments import error_vs_level  # table3 / figure2
from repro.experiments import threshold  # figure3
from repro.experiments import walls  # table4
from repro.experiments import multiroom  # table5-7
from repro.experiments import body  # table8-9
from repro.experiments import phones_narrowband  # table10
from repro.experiments import phones_spread  # table11-13
from repro.experiments import competing  # table14
from repro.experiments import fec_eval  # X1
from repro.experiments import mac_ablation  # X3
from repro.experiments import burst_ablation  # X4
from repro.experiments import cdma_extension  # X5
from repro.experiments import hidden_terminal  # X6
from repro.experiments import throughput  # X7
from repro.experiments import diversity_ablation  # X8
from repro.experiments import tcp_over_wavelan  # X9
from repro.experiments import validation  # V1

__all__ = [
    "scenarios",
    "baseline",
    "signal_vs_distance",
    "error_vs_level",
    "threshold",
    "walls",
    "multiroom",
    "body",
    "phones_narrowband",
    "phones_spread",
    "competing",
    "fec_eval",
    "mac_ablation",
    "burst_ablation",
    "cdma_extension",
    "hidden_terminal",
    "throughput",
    "diversity_ablation",
    "tcp_over_wavelan",
    "validation",
]
