"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(scale=..., seed=...) -> <Result dataclass>``
returning structured data, and ``main()`` printing the paper-style
table.  ``scale`` multiplies the paper's packet counts (1.0 = the
paper's trial lengths; tests use small scales, benchmarks moderate
ones).  The experiment ↔ module ↔ benchmark mapping lives in DESIGN.md
§4 and EXPERIMENTS.md.
"""

from repro.experiments import scenarios

__all__ = ["scenarios"]
