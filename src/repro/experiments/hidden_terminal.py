"""Extension X6 — the hidden-transmitter problem (Section 7.4).

"Hosts in the border zone can hear and be heard by hosts in multiple
pseudo-cells, while the hosts in the different pseudo-cells cannot
hear each other ... if there is simultaneous communication in more
than one cell ... then a mobile host in the border zone may receive
badly damaged packets.  This is a special case of the classical
'hidden transmitter' problem.  We have observed, though not
experimentally verified, that, when operated without thresholding,
WaveLAN is fairly resistant to errors caused by hidden transmitters.
We conjecture ... a 'capture effect' inherent in its
multipath-resistant receiver design."

Geometry: two senders A and B at opposite ends of a long hallway, a
receiver in the middle.  We sweep the senders' receive thresholds:

* **low threshold** — A and B hear each other, CSMA/CA serializes
  them: few overlaps, clean delivery;
* **high threshold** — A and B are mutually hidden: they transmit
  concurrently, and the middle receiver's fate depends on capture.

We run the hidden case twice — receiver equidistant (no capture, both
signals comparable) and receiver off-centre (capture saves the
stronger sender) — experimentally verifying the paper's conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.link.network import WaveLanNetwork
from repro.phy.modem import ModemConfig
from repro.trace.receiver import TraceRecorder

HALL_LENGTH_FT = 70.0
FRAMES_PER_SENDER = 150
# At the hall's ends, each sender reads the other at ~level 14; a
# threshold comfortably above that hides them from each other.
HIDDEN_THRESHOLD = 20
OPEN_THRESHOLD = 3

SCENARIOS = (
    "mutual carrier sense",
    "hidden, receiver centred",
    "hidden, receiver off-centre",
)


@dataclass
class HiddenOutcome:
    scenario: str
    frames_offered: int
    intact_a: int
    intact_b: int
    collisions_a: int
    collisions_b: int

    @property
    def total_intact_fraction(self) -> float:
        return (self.intact_a + self.intact_b) / (2 * self.frames_offered)

    @property
    def stronger_intact_fraction(self) -> float:
        """Delivery of whichever sender fared better (the captured one)."""
        return max(self.intact_a, self.intact_b) / self.frames_offered


@dataclass
class HiddenTerminalResult:
    outcomes: list[HiddenOutcome] = field(default_factory=list)

    def outcome(self, scenario: str) -> HiddenOutcome:
        for o in self.outcomes:
            if o.scenario == scenario:
                return o
        raise KeyError(scenario)


def _run_scenario(
    scenario: str, frames: int, seed: int
) -> HiddenOutcome:
    threshold = OPEN_THRESHOLD if scenario == "mutual carrier sense" else HIDDEN_THRESHOLD
    receiver_x = (
        HALL_LENGTH_FT / 2.0
        if scenario != "hidden, receiver off-centre"
        else HALL_LENGTH_FT * 0.15
    )

    # A long open hallway: endpoints barely hear each other.
    propagation = PropagationModel.calibrated(level=29.0, at_distance_ft=10.0)
    network = WaveLanNetwork.create(propagation, seed=seed)
    network.add_station(1, Point(0.0, 0.0), ModemConfig(receive_threshold=threshold))
    network.add_station(
        2, Point(HALL_LENGTH_FT, 0.0), ModemConfig(receive_threshold=threshold)
    )
    receiver = network.add_station(3, Point(receiver_x, 0.0), with_mac=False)
    recorder = TraceRecorder(receiver)

    # Distinct test series per sender so the analysis can attribute
    # intact frames.
    spec_a = TestPacketSpec.default()
    base = TestPacketSpec.default()
    spec_b = TestPacketSpec(
        src_mac=base.src_mac,
        dst_mac=base.dst_mac,
        src_ip="128.2.222.103",
        dst_ip=base.dst_ip,
        src_port=5002,
        dst_port=base.dst_port,
        first_sequence=1_000_000,
    )
    factory_a = TestPacketFactory(spec_a)
    factory_b = TestPacketFactory(spec_b)
    for sequence in range(frames):
        network.send(1, factory_a.build(sequence))
        network.send(2, factory_b.build(sequence))
    network.run_for(frames * 0.0045 * 2.5 + 0.5)

    # Attribute intact receptions byte-exactly.
    sent_a = {factory_a.build(s) for s in range(frames)}
    sent_b = {factory_b.build(s) for s in range(frames)}
    intact_a = sum(1 for r in recorder.records if r.data in sent_a)
    intact_b = sum(1 for r in recorder.records if r.data in sent_b)
    return HiddenOutcome(
        scenario=scenario,
        frames_offered=frames,
        intact_a=intact_a,
        intact_b=intact_b,
        collisions_a=network.macs[1].stats.collisions,
        collisions_b=network.macs[2].stats.collisions,
    )


def _aggregate(ctx: PlanContext, values: list) -> HiddenTerminalResult:
    return HiddenTerminalResult(outcomes=list(values))


def _report_lines(report, result: HiddenTerminalResult, scale: float) -> None:
    report.add(
        "X6 hidden terminal", "capture saves stronger sender",
        "conjectured",
        f"{100 * result.outcome('hidden, receiver off-centre').stronger_intact_fraction:.0f}%",
        result.outcome("hidden, receiver off-centre").stronger_intact_fraction > 0.7,
    )


@experiment(
    name="hidden",
    artifact="X6",
    description="X6: hidden-transmitter capture effect",
    aggregate=_aggregate,
    render=lambda result, scale: _render(result, scale),
    default_scale=1.0,
    default_seed=97,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per carrier-sense scenario."""
    frames = max(30, int(FRAMES_PER_SENDER * ctx.scale))
    return [
        TrialPlan(
            scenario,
            _run_scenario,
            {"scenario": scenario, "frames": frames},
        )
        for scenario in SCENARIOS
    ]


def run(scale: float = 1.0, seed: int = 97, jobs: int = 1) -> HiddenTerminalResult:
    return ENGINE.run("hidden", scale=scale, seed=seed, jobs=jobs)


def _render(result: HiddenTerminalResult, scale: float) -> None:
    print("Extension X6: the hidden-transmitter problem (Section 7.4)")
    print(f"{'scenario':>28} | {'A intact':>8} | {'B intact':>8} | "
          f"{'total':>6} | {'best':>6} | {'CSMA collisions':>15}")
    for o in result.outcomes:
        print(f"{o.scenario:>28} | {o.intact_a:8d} | {o.intact_b:8d} | "
              f"{100 * o.total_intact_fraction:5.1f}% | "
              f"{100 * o.stronger_intact_fraction:5.1f}% | "
              f"{o.collisions_a + o.collisions_b:15d}")
    print("\nThe paper's conjecture, verified: mutual carrier sense "
          "serializes the senders; mutually hidden senders collide, and "
          "what survives at the receiver is governed by capture — the "
          "equidistant receiver loses both, the off-centre receiver "
          "still hears its stronger neighbour.")


def main(scale: float = 1.0, seed: int = 97, jobs: int = 1) -> HiddenTerminalResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
