"""Table 3 and Figure 2 — packet error conditions versus signal metrics
(Section 5.2).

Several lecture-hall trials at varying distance/orientation are
aggregated; each received packet is classified, and the signal metrics
are summarized per damage class.  Paper findings to preserve:

* undamaged packets run as low as level 5, damaged ones as high as 12,
  but "the main body of damaged packets has signal levels below 8,
  whereas it is well above 8 for undamaged packets" (Table 3);
* a signal level of roughly 10 suffices for reliable reception; below 8
  lies the shaded "error region" of Figure 2;
* outsiders are distinguished most sharply by their *signal quality*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import ClassifiedTrace, classify_trace
from repro.analysis.signalstats import SignalStats, signal_stats_by_class
from repro.analysis.tables import render_signal_table
from repro.environment.geometry import Point
from repro.experiments.scenarios import lecture_hall_scenario
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.records import TrialTrace
from repro.trace.trial import TrialConfig, run_fast_trial

# The aggregated trials: distances spanning strong to error-region, with
# "slight variations of receiver position, orientation, and obstacles"
# (modelled as small distance perturbations).  8634 packets total in the
# paper; ~12 sub-trials of ~720.
SUBTRIAL_DISTANCES_FT = [10, 20, 30, 40, 48, 55, 62, 68, 72, 76, 80, 84, 90, 100, 110]
PACKETS_PER_SUBTRIAL = 576

# Figure 2's reliability boundaries (levels).
ERROR_REGION_CEILING = 8.0
RELIABLE_FLOOR = 10.0

PAPER_TABLE_3 = {
    "All test packets": dict(packets=8634, level_mean=14.15),
    "Undamaged": dict(packets=7942, level_mean=14.74),
    "Truncated": dict(packets=107, level_mean=6.20),
    "Wrapper damaged": dict(packets=9, level_mean=7.56),
    "Body damaged": dict(packets=576, level_mean=7.52),
}


@dataclass
class LevelBin:
    """Figure-2 series: error rates within one signal-level bin."""

    level: int
    sent: int
    received: int
    damaged: int

    @property
    def loss_fraction(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def damage_fraction(self) -> float:
        return self.damaged / self.received if self.received else 0.0


@dataclass
class ErrorVsLevelResult:
    classified: ClassifiedTrace | None = None
    table3: list[SignalStats] = field(default_factory=list)
    level_bins: list[LevelBin] = field(default_factory=list)

    def group(self, name: str) -> SignalStats:
        for row in self.table3:
            if row.group == name:
                return row
        raise KeyError(name)


def run(scale: float = 1.0, seed: int = 52) -> ErrorVsLevelResult:
    propagation = lecture_hall_scenario()
    rx = Point(0.0, 0.0)
    packets = max(200, int(PACKETS_PER_SUBTRIAL * scale))

    # Aggregate all sub-trials into one trace (the paper's Table 3 is
    # "the aggregated results of several trials").
    aggregate: TrialTrace | None = None
    sent_by_level: dict[int, int] = {}
    received_by_level: dict[int, int] = {}
    damaged_by_level: dict[int, int] = {}

    for index, distance in enumerate(SUBTRIAL_DISTANCES_FT):
        config = TrialConfig(
            name="distance-aggregate",
            packets=packets,
            seed=seed + index,
            propagation=propagation,
            tx_position=Point(float(distance), 0.35 * (index % 3 - 1)),
            rx_position=rx,
            outsiders=OutsiderTraffic(
                mean_level=4.6, level_sd=1.6, rate_per_test_packet=0.11
            )
            if index % 3 == 0
            else None,
        )
        output = run_fast_trial(config)
        # Figure-2 bins use the *predicted* mean level of the sub-trial
        # for the sent count and observed readings for received packets.
        mean_level = int(round(config.resolved_mean_level()))
        sent_by_level[mean_level] = sent_by_level.get(mean_level, 0) + packets
        classified_sub = classify_trace(output.trace)
        for packet in classified_sub.test_packets:
            lvl = mean_level
            received_by_level[lvl] = received_by_level.get(lvl, 0) + 1
            if packet.packet_class.name != "UNDAMAGED":
                damaged_by_level[lvl] = damaged_by_level.get(lvl, 0) + 1
        if aggregate is None:
            aggregate = output.trace
        else:
            aggregate.extend(output.trace)

    assert aggregate is not None
    classified = classify_trace(aggregate)
    result = ErrorVsLevelResult(classified=classified)
    result.table3 = signal_stats_by_class(classified)
    for level in sorted(sent_by_level):
        result.level_bins.append(
            LevelBin(
                level=level,
                sent=sent_by_level[level],
                received=received_by_level.get(level, 0),
                damaged=damaged_by_level.get(level, 0),
            )
        )
    return result


def main(scale: float = 1.0, seed: int = 52) -> ErrorVsLevelResult:
    result = run(scale=scale, seed=seed)
    print("Table 3: Packet error conditions versus signal metrics "
          f"(scale={scale:g})")
    print(render_signal_table(result.table3))
    print("\nFigure 2: error rates by (sub-trial mean) signal level — "
          f"error region below level {ERROR_REGION_CEILING:.0f}")
    print(f"{'level':>6} | {'sent':>6} | {'recv':>6} | {'loss%':>6} | {'dmg%':>6}")
    for b in result.level_bins:
        marker = "  << error region" if b.level < ERROR_REGION_CEILING else ""
        print(f"{b.level:6d} | {b.sent:6d} | {b.received:6d} | "
              f"{100 * b.loss_fraction:6.2f} | {100 * b.damage_fraction:6.2f}"
              f"{marker}")
    return result


if __name__ == "__main__":
    main()
