"""Table 3 and Figure 2 — packet error conditions versus signal metrics
(Section 5.2).

Several lecture-hall trials at varying distance/orientation are
aggregated; each received packet is classified, and the signal metrics
are summarized per damage class.  Paper findings to preserve:

* undamaged packets run as low as level 5, damaged ones as high as 12,
  but "the main body of damaged packets has signal levels below 8,
  whereas it is well above 8 for undamaged packets" (Table 3);
* a signal level of roughly 10 suffices for reliable reception; below 8
  lies the shaded "error region" of Figure 2;
* outsiders are distinguished most sharply by their *signal quality*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import ClassifiedTrace, classify_trace
from repro.analysis.signalstats import SignalStats, signal_stats_by_class
from repro.analysis.tables import render_signal_table
from repro.environment.geometry import Point
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.parallel import export_trace
from repro.trace.columnar import ColumnarTrace
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.persist import save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

# The aggregated trials: distances spanning strong to error-region, with
# "slight variations of receiver position, orientation, and obstacles"
# (modelled as small distance perturbations).  8634 packets total in the
# paper; ~12 sub-trials of ~720.
SUBTRIAL_DISTANCES_FT = [10, 20, 30, 40, 48, 55, 62, 68, 72, 76, 80, 84, 90, 100, 110]
PACKETS_PER_SUBTRIAL = 576

# Figure 2's reliability boundaries (levels).
ERROR_REGION_CEILING = 8.0
RELIABLE_FLOOR = 10.0

#: The registered lecture-hall topology the sub-trials perturb.
SCENARIO = "paper/lecture-hall"

PAPER_TABLE_3 = {
    "All test packets": dict(packets=8634, level_mean=14.15),
    "Undamaged": dict(packets=7942, level_mean=14.74),
    "Truncated": dict(packets=107, level_mean=6.20),
    "Wrapper damaged": dict(packets=9, level_mean=7.56),
    "Body damaged": dict(packets=576, level_mean=7.52),
}


@dataclass
class LevelBin:
    """Figure-2 series: error rates within one signal-level bin."""

    level: int
    sent: int
    received: int
    damaged: int

    @property
    def loss_fraction(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def damage_fraction(self) -> float:
        return self.damaged / self.received if self.received else 0.0


@dataclass
class ErrorVsLevelResult:
    classified: ClassifiedTrace | None = None
    table3: list[SignalStats] = field(default_factory=list)
    level_bins: list[LevelBin] = field(default_factory=list)

    def group(self, name: str) -> SignalStats:
        for row in self.table3:
            if row.group == name:
                return row
        raise KeyError(name)


def _run_subtrial(
    distance: float,
    index: int,
    packets: int,
    seed: int,
    transport: Optional[str] = None,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> dict:
    """One lecture-hall sub-trial, picklable.

    Returns the Figure-2 bin counts plus the sub-trial's raw trace as a
    :class:`ColumnarTrace` (inline) or a handoff handle (``transport``
    set, pool workers) — either way the aggregator concatenates
    columnar traces, so the ``jobs=1`` and ``jobs=N`` aggregation paths
    are structurally identical.
    """
    from repro.scenario.registry import REGISTRY

    propagation = REGISTRY.compile(SCENARIO).propagation()
    config = TrialConfig(
        name="distance-aggregate",
        packets=packets,
        seed=seed,
        propagation=propagation,
        tx_position=Point(float(distance), 0.35 * (index % 3 - 1)),
        rx_position=Point(0.0, 0.0),
        outsiders=OutsiderTraffic(
            mean_level=4.6, level_sd=1.6, rate_per_test_packet=0.11
        )
        if index % 3 == 0
        else None,
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, f"subtrial-{distance:g}ft", trace_format),
            format=trace_format,
        )
    # Figure-2 bins use the *predicted* mean level of the sub-trial for
    # the sent count and observed readings for received packets.
    mean_level = int(round(config.resolved_mean_level()))
    classified_sub = classify_trace(output.trace)
    received = len(classified_sub.test_packets)
    damaged = sum(
        1
        for packet in classified_sub.test_packets
        if packet.packet_class.name != "UNDAMAGED"
    )
    trace = ColumnarTrace.from_trace(output.trace)
    return {
        "mean_level": mean_level,
        "sent": packets,
        "received": received,
        "damaged": damaged,
        "trace": export_trace(trace, via=transport) if transport else trace,
    }


def _aggregate(ctx: PlanContext, values: list) -> ErrorVsLevelResult:
    sent_by_level: dict[int, int] = {}
    received_by_level: dict[int, int] = {}
    damaged_by_level: dict[int, int] = {}
    for sub in values:
        level = sub["mean_level"]
        sent_by_level[level] = sent_by_level.get(level, 0) + sub["sent"]
        received_by_level[level] = (
            received_by_level.get(level, 0) + sub["received"]
        )
        damaged_by_level[level] = damaged_by_level.get(level, 0) + sub["damaged"]
    aggregate = ColumnarTrace.concat(
        [sub["trace"] for sub in values], name="distance-aggregate"
    )
    classified = classify_trace(aggregate)
    result = ErrorVsLevelResult(classified=classified)
    result.table3 = signal_stats_by_class(classified)
    for level in sorted(sent_by_level):
        result.level_bins.append(
            LevelBin(
                level=level,
                sent=sent_by_level[level],
                received=received_by_level.get(level, 0),
                damaged=damaged_by_level.get(level, 0),
            )
        )
    return result


def _render(result: ErrorVsLevelResult, scale: float) -> None:
    print("Table 3: Packet error conditions versus signal metrics "
          f"(scale={scale:g})")
    print(render_signal_table(result.table3))
    print("\nFigure 2: error rates by (sub-trial mean) signal level — "
          f"error region below level {ERROR_REGION_CEILING:.0f}")
    print(f"{'level':>6} | {'sent':>6} | {'recv':>6} | {'loss%':>6} | {'dmg%':>6}")
    for b in result.level_bins:
        marker = "  << error region" if b.level < ERROR_REGION_CEILING else ""
        print(f"{b.level:6d} | {b.sent:6d} | {b.received:6d} | "
              f"{100 * b.loss_fraction:6.2f} | {100 * b.damage_fraction:6.2f}"
              f"{marker}")


def _report_lines(report, result: ErrorVsLevelResult, scale: float) -> None:
    damaged_mean = result.group("Body damaged").level.mean
    undamaged_mean = result.group("Undamaged").level.mean
    report.add(
        "T3/F2 error region", "body-damaged level mean", "7.52",
        f"{damaged_mean:.2f}", 5.5 < damaged_mean < 9.0,
    )
    report.add(
        "T3/F2 error region", "undamaged - damaged gap", ">= ~7 levels",
        f"{undamaged_mean - damaged_mean:.1f}",
        undamaged_mean - damaged_mean > 2.0,
    )


@experiment(
    name="table3",
    artifact="Table 3 + Figure 2",
    description="Table 3 + Figure 2: errors vs signal metrics",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=52,
    aliases=("figure2",),
    traceable=True,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per sub-trial distance."""
    packets = max(200, int(PACKETS_PER_SUBTRIAL * ctx.scale))
    return [
        TrialPlan(
            f"subtrial-{distance:g}ft",
            _run_subtrial,
            {"distance": float(distance), "index": index, "packets": packets},
            traceable=True,
            pool_kwargs={"transport": "file"},
            scenario=SCENARIO,
        )
        for index, distance in enumerate(SUBTRIAL_DISTANCES_FT)
    ]


def run(scale: float = 1.0, seed: int = 52, jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2") -> ErrorVsLevelResult:
    return ENGINE.run(
        "table3", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(scale: float = 1.0, seed: int = 52, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> ErrorVsLevelResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
