"""Table 14 — competing WaveLAN units (Section 7.4).

Two hostile WaveLAN transmitters at the Figure-4 Tx4/Tx5 locations
transmit continuously (their receive thresholds raised to 35 so they
never defer).  Paper findings:

* victim threshold at the default **3**: the link is "completely
  unusable" — corrupted Ethernet addresses, high loss, rare
  collision-free transmissions;
* victim threshold at **25** (safely above the interferers' received
  levels): the competition is completely masked — no bit errors, a
  statistically insignificant .02 % loss, signal level and quality
  unchanged, but the silence level up from ~3.4 to ~13.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import SignalStats, stats_for_packets
from repro.analysis.tables import render_signal_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.scenario.builtin import TABLE14_SCENARIOS
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

PAPER_PACKETS = 12_715
MASKING_THRESHOLD = 25
DEFAULT_THRESHOLD = 3

PAPER_SILENCE = {"Without interference": 3.35, "With interference": 13.62}


@dataclass
class CompetingResult:
    metrics_rows: list[TrialMetrics] = field(default_factory=list)
    signal_rows: list[SignalStats] = field(default_factory=list)
    unusable_metrics: TrialMetrics | None = None

    def metrics(self, name: str) -> TrialMetrics:
        for row in self.metrics_rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def silence_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.silence is not None:
                return row.silence.mean
        raise KeyError(name)

    def level_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.level is not None:
                return row.level.mean
        raise KeyError(name)


def _run_trial(
    name: str,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> tuple[TrialMetrics, SignalStats]:
    """One Table-14 trial, self-contained and picklable.

    Each trial compiles its registered scenario in-process; the victim
    threshold and the hostile transmitters' matched power levels are
    declared in the scenario (``match_received_level`` inverts the
    emitter model so the jammers land at the Table-6 levels).
    """
    from repro.scenario.registry import REGISTRY

    config = REGISTRY.compile(TABLE14_SCENARIOS[name]).trial_config(
        "Tx1", packets=packets, seed=seed, name=name
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, name, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    return (
        metrics_from_classified(classified),
        stats_for_packets(name, classified.test_packets),
    )


def _aggregate(ctx: PlanContext, values: list) -> CompetingResult:
    result = CompetingResult()
    names = ["Without interference", "With interference"]
    if ctx.extra("include_unusable", True):
        names.append("Unmasked (threshold 3)")
    for (metrics, signal_row), name in zip(values, names):
        if name == "Unmasked (threshold 3)":
            result.unusable_metrics = metrics
        else:
            result.metrics_rows.append(metrics)
            result.signal_rows.append(signal_row)
    return result


def _render(result: CompetingResult, scale: float) -> None:
    print("Table 14: Signal metrics with and without interfering WaveLAN "
          f"transmitters (victim threshold {MASKING_THRESHOLD}, scale={scale:g})")
    print(render_signal_table(result.signal_rows, label="Trial"))
    masked = result.metrics("With interference")
    print(f"\nMasked competition: loss {masked.packet_loss_percent:.3f}% "
          f"(paper .02%), damaged bits {masked.body_bits_damaged} (paper 0)")
    if result.unusable_metrics is not None:
        u = result.unusable_metrics
        print(f"Unmasked (threshold {DEFAULT_THRESHOLD}): loss "
              f"{u.packet_loss_percent:.1f}%, truncated {u.packets_truncated}, "
              f"damaged {u.body_damaged_packets} of {u.packets_received} "
              f"received — \"completely unusable\"")
    print("Paper silence means:", PAPER_SILENCE)


def _report_lines(report, result: CompetingResult, scale: float) -> None:
    masked = result.metrics("With interference")
    silence_delta = result.silence_mean("With interference") - result.silence_mean(
        "Without interference"
    )
    report.add(
        "T14 competing", "masked: bit errors", "0",
        str(masked.body_bits_damaged), masked.body_bits_damaged == 0,
    )
    report.add(
        "T14 competing", "silence rise", "+10.3 levels",
        f"+{silence_delta:.1f}", 8.0 < silence_delta < 14.0,
    )
    report.add(
        "T14 competing", "unmasked", "completely unusable",
        f"{result.unusable_metrics.packet_loss_percent:.0f}% loss",
        result.unusable_metrics.packet_loss_percent > 50,
    )


@experiment(
    name="table14",
    artifact="Table 14",
    description="Table 14: competing WaveLAN units",
    aggregate=_aggregate,
    render=_render,
    default_scale=0.25,
    default_seed=74,
    traceable=True,
    report_lines=_report_lines,
    report_extras={"include_unusable": True},
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """The masked pair, plus the unmasked "unusable" trial."""
    packets = max(400, int(PAPER_PACKETS * ctx.scale))
    setups = [
        ("Without interference", packets),
        ("With interference", packets),
    ]
    if ctx.extra("include_unusable", True):
        # The paper's first attempt: victim at the default threshold 3,
        # the competition unmasked — "completely unusable".
        setups.append(("Unmasked (threshold 3)", min(packets, 1_440)))
    return [
        TrialPlan(
            name,
            _run_trial,
            {"name": name, "packets": count},
            traceable=True,
            scenario=TABLE14_SCENARIOS[name],
        )
        for name, count in setups
    ]


def run(
    scale: float = 1.0,
    seed: int = 74,
    include_unusable: bool = True,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> CompetingResult:
    """Run the masked pair of Table-14 trials (plus the unmasked one).

    The trials are mutually independent, so ``jobs > 1`` fans them over
    a process pool; the assembled result is identical to a serial run.
    """
    return ENGINE.run(
        "table14", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
        extras={"include_unusable": include_unusable},
    )


def main(scale: float = 0.25, seed: int = 74, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> CompetingResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
