"""Table 14 — competing WaveLAN units (Section 7.4).

Two hostile WaveLAN transmitters at the Figure-4 Tx4/Tx5 locations
transmit continuously (their receive thresholds raised to 35 so they
never defer).  Paper findings:

* victim threshold at the default **3**: the link is "completely
  unusable" — corrupted Ethernet addresses, high loss, rare
  collision-free transmissions;
* victim threshold at **25** (safely above the interferers' received
  levels): the competition is completely masked — no bit errors, a
  statistically insignificant .02 % loss, signal level and quality
  unchanged, but the silence level up from ~3.4 to ~13.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import SignalStats, stats_for_packets
from repro.analysis.tables import render_signal_table
from repro.experiments.scenarios import multiroom_scenario
from repro.interference.wavelan import CompetingWaveLanTransmitter
from repro.parallel import Task, run_tasks
from repro.phy.modem import ModemConfig
from repro.trace.trial import TrialConfig, run_fast_trial

PAPER_PACKETS = 12_715
MASKING_THRESHOLD = 25
DEFAULT_THRESHOLD = 3

PAPER_SILENCE = {"Without interference": 3.35, "With interference": 13.62}


@dataclass
class CompetingResult:
    metrics_rows: list[TrialMetrics] = field(default_factory=list)
    signal_rows: list[SignalStats] = field(default_factory=list)
    unusable_metrics: TrialMetrics | None = None

    def metrics(self, name: str) -> TrialMetrics:
        for row in self.metrics_rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def silence_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.silence is not None:
                return row.silence.mean
        raise KeyError(name)

    def level_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.level is not None:
                return row.level.mean
        raise KeyError(name)


def _jammers(layout, victim_threshold: int) -> list[CompetingWaveLanTransmitter]:
    """The two hostile transmitters at the Tx4 and Tx5 locations.

    Their emitted power is chosen so their received levels at the victim
    match what Table 6 measured from those locations (13.8 and 9.5).
    """
    jammers = []
    for name, position in (("Tx4", layout.tx4), ("Tx5", layout.tx5)):
        received = layout.propagation.mean_level(position, layout.rx)
        distance = max(position.distance_to(layout.rx), 0.25)
        # Invert the emitter model so level_at(rx) == received.
        import math

        level_at_1ft = received + 10.0 * math.log10(distance)
        jammers.append(
            CompetingWaveLanTransmitter(
                position=position,
                level_at_1ft=level_at_1ft,
                victim_receive_threshold=victim_threshold,
                name=f"hostile-{name}",
            )
        )
    return jammers


def _run_trial(
    name: str, packets: int, seed: int, threshold: int, jammed: bool
) -> tuple[TrialMetrics, SignalStats]:
    """One Table-14 trial, self-contained and picklable."""
    layout = multiroom_scenario()
    config = TrialConfig(
        name=name,
        packets=packets,
        seed=seed,
        propagation=layout.propagation,
        tx_position=layout.tx1,
        rx_position=layout.rx,
        modem_config=ModemConfig(receive_threshold=threshold),
        interference=_jammers(layout, threshold) if jammed else [],
    )
    output = run_fast_trial(config)
    classified = classify_trace(output.trace)
    return (
        metrics_from_classified(classified),
        stats_for_packets(name, classified.test_packets),
    )


def run(
    scale: float = 1.0,
    seed: int = 74,
    include_unusable: bool = True,
    jobs: int = 1,
) -> CompetingResult:
    """Run the masked pair of Table-14 trials (plus the unmasked one).

    The trials are mutually independent, so ``jobs > 1`` fans them over
    a process pool; the assembled result is identical to a serial run.
    """
    packets = max(400, int(PAPER_PACKETS * scale))
    plans = [
        ("Without interference", packets, seed, MASKING_THRESHOLD, False),
        ("With interference", packets, seed + 1, MASKING_THRESHOLD, True),
    ]
    if include_unusable:
        # The paper's first attempt: victim at the default threshold 3,
        # the competition unmasked — "completely unusable".
        plans.append(
            (
                "Unmasked (threshold 3)",
                min(packets, 1_440),
                seed + 10,
                DEFAULT_THRESHOLD,
                True,
            )
        )
    tasks = [
        Task(
            name,
            _run_trial,
            {
                "name": name,
                "packets": count,
                "seed": trial_seed,
                "threshold": threshold,
                "jammed": jammed,
            },
            seed=trial_seed,
            scale=scale,
        )
        for name, count, trial_seed, threshold, jammed in plans
    ]
    if jobs <= 1:
        rows = [_run_trial(**task.kwargs) for task in tasks]
    else:
        rows = [
            r.value for r in run_tasks(tasks, jobs=jobs, label="table14-trials")
        ]
    result = CompetingResult()
    for (metrics, signal_row), (name, *_rest) in zip(rows, plans):
        if name == "Unmasked (threshold 3)":
            result.unusable_metrics = metrics
        else:
            result.metrics_rows.append(metrics)
            result.signal_rows.append(signal_row)
    return result


def main(scale: float = 0.25, seed: int = 74, jobs: int = 1) -> CompetingResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    print("Table 14: Signal metrics with and without interfering WaveLAN "
          f"transmitters (victim threshold {MASKING_THRESHOLD}, scale={scale:g})")
    print(render_signal_table(result.signal_rows, label="Trial"))
    masked = result.metrics("With interference")
    print(f"\nMasked competition: loss {masked.packet_loss_percent:.3f}% "
          f"(paper .02%), damaged bits {masked.body_bits_damaged} (paper 0)")
    if result.unusable_metrics is not None:
        u = result.unusable_metrics
        print(f"Unmasked (threshold {DEFAULT_THRESHOLD}): loss "
              f"{u.packet_loss_percent:.1f}%, truncated {u.packets_truncated}, "
              f"damaged {u.body_damaged_packets} of {u.packets_received} "
              f"received — \"completely unusable\"")
    print("Paper silence means:", PAPER_SILENCE)
    return result


if __name__ == "__main__":
    main()
