"""Where experiment drivers put persisted trial traces.

The paper's workflow was capture-then-analyze-offline; experiments that
take a ``trace_dir`` mirror it by saving each trial's raw trace for
later ``python -m repro``-independent analysis (docs/TRACE_FORMAT.md).
Names derive only from the trial name and format, so re-runs overwrite
in place and parallel workers never collide (trial names are unique
within an experiment).
"""

from __future__ import annotations

from pathlib import Path

from repro.trace.columnar import V2_SUFFIX

_V1_SUFFIX = ".jsonl"


def _slug(name: str) -> str:
    """A filesystem-safe version of a trial name ("AT&T handset" ->
    "at_t_handset")."""
    return "".join(
        c.lower() if c.isalnum() else "_" for c in name
    ).strip("_") or "trial"


def trial_trace_path(
    directory: str | Path, trial: str, trace_format: str = "v2"
) -> Path:
    """The canonical path for one trial's persisted trace."""
    suffix = V2_SUFFIX if trace_format == "v2" else _V1_SUFFIX
    return Path(directory) / f"{_slug(trial)}{suffix}"
