"""Ablation X4 — burst vs i.i.d. errors and what they do to FEC.

DESIGN.md calls out the error process' burstiness as a load-bearing
design choice: the paper's syndromes are bursty (multi-bit corruption
in single packets at Tx5; contiguous jam windows under the SS phone),
and burstiness is precisely what decides whether convolutional codes
need interleaving.  This ablation runs the RCPC family over a
Gilbert–Elliott channel and an i.i.d. channel *matched to the same
average BER*, with and without interleaving.

Expected shape: on the i.i.d. channel interleaving is irrelevant and
each rate has a sharp BER threshold; on the burst channel the raw codes
collapse well below their i.i.d. thresholds and interleaving restores
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RATE_ORDER, RcpcCodec
from repro.phy.gilbert import GilbertElliott

INFO_BITS = 1_024
PACKETS = 40
MEAN_BURST_BITS = 12.0
MEAN_BERS = (1e-3, 3e-3, 1e-2)


@dataclass
class BurstOutcome:
    mean_ber: float
    rate_name: str
    channel: str  # "iid" or "burst"
    interleaved: bool
    packets: int
    packets_recovered: int

    @property
    def recovery_fraction(self) -> float:
        return self.packets_recovered / self.packets if self.packets else 0.0


@dataclass
class BurstAblationResult:
    outcomes: list[BurstOutcome] = field(default_factory=list)

    def outcome(
        self, mean_ber: float, rate: str, channel: str, interleaved: bool
    ) -> BurstOutcome:
        for o in self.outcomes:
            if (
                o.mean_ber == mean_ber
                and o.rate_name == rate
                and o.channel == channel
                and o.interleaved == interleaved
            ):
                return o
        raise KeyError((mean_ber, rate, channel, interleaved))


def _error_positions(
    channel: str, mean_ber: float, n_bits: int, rng: np.random.Generator
) -> np.ndarray:
    if channel == "burst":
        process = GilbertElliott.calibrated_to_syndromes(
            mean_burst_bits=MEAN_BURST_BITS, mean_ber=mean_ber
        )
        return process.error_positions(n_bits, rng)
    count = rng.binomial(n_bits, mean_ber)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(rng.choice(n_bits, size=count, replace=False)).astype(np.int64)


def _run_ber(mean_ber: float, packets: int, seed: int) -> list[BurstOutcome]:
    """Every rate × channel × interleaving cell at one mean BER."""
    outcomes = []
    rng = np.random.default_rng(seed)
    interleaver = BlockInterleaver(32, 64)
    info = rng.integers(0, 2, INFO_BITS).astype(np.uint8)
    for rate_name in RATE_ORDER:
        codec = RcpcCodec(rate_name)
        transmitted = codec.encode(info)
        for channel in ("iid", "burst"):
            for interleaved in (False, True):
                recovered = 0
                for _ in range(packets):
                    positions = _error_positions(
                        channel, mean_ber, len(transmitted), rng
                    )
                    stream = (
                        interleaver.scramble(transmitted)
                        if interleaved
                        else transmitted
                    ).copy()
                    stream[positions] ^= 1
                    if interleaved:
                        stream = interleaver.unscramble(stream)
                    if np.array_equal(codec.decode(stream), info):
                        recovered += 1
                outcomes.append(
                    BurstOutcome(
                        mean_ber=mean_ber,
                        rate_name=rate_name,
                        channel=channel,
                        interleaved=interleaved,
                        packets=packets,
                        packets_recovered=recovered,
                    )
                )
    return outcomes


def _aggregate(ctx: PlanContext, values: list) -> BurstAblationResult:
    result = BurstAblationResult()
    for outcomes in values:
        result.outcomes.extend(outcomes)
    return result


def _render(result: BurstAblationResult, scale: float) -> None:
    print("Ablation X4: burst (Gilbert-Elliott) vs i.i.d. errors, "
          f"matched mean BER (burst length ~{MEAN_BURST_BITS:.0f} bits)")
    print(f"{'BER':>8} | {'rate':>4} | {'iid':>6} | {'iid+ilv':>7} | "
          f"{'burst':>6} | {'burst+ilv':>9}")
    for mean_ber in MEAN_BERS:
        for rate in RATE_ORDER:
            cells = [
                result.outcome(mean_ber, rate, "iid", False),
                result.outcome(mean_ber, rate, "iid", True),
                result.outcome(mean_ber, rate, "burst", False),
                result.outcome(mean_ber, rate, "burst", True),
            ]
            print(f"{mean_ber:8.0e} | {rate:>4} | "
                  + " | ".join(f"{100 * c.recovery_fraction:5.0f}%" for c in cells))


@experiment(
    name="burst",
    artifact="X4",
    description="X4: burst vs i.i.d. error ablation",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=91,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per mean-BER operating point."""
    packets = max(10, int(PACKETS * ctx.scale))
    return [
        TrialPlan(
            f"ber-{mean_ber:.0e}",
            _run_ber,
            {"mean_ber": mean_ber, "packets": packets},
        )
        for mean_ber in MEAN_BERS
    ]


def run(scale: float = 1.0, seed: int = 91, jobs: int = 1) -> BurstAblationResult:
    return ENGINE.run("burst", scale=scale, seed=seed, jobs=jobs)


def main(scale: float = 1.0, seed: int = 91, jobs: int = 1) -> BurstAblationResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
