"""Extension X9 — TCP over the measured error environment (Section 9.3).

The mobile-IP community the paper surveys built transparent proxies
(I-TCP [4], snooping [5]) because TCP reads wireless corruption as
congestion.  The paper's counterpoint: "there may be a class of
high-performance wireless networks for which less aggressive
approaches may suffice."

This experiment runs a compact 1996-era TCP-Reno (coarse-grained
timers) over the calibrated link at each of the paper's operating
points, under three recovery regimes — plain end-to-end, transparent
3-retry link ARQ (the gentlest "less aggressive approach"), and a
snoop agent at the base station (the paper's citation [5]):

* on links like the paper's offices and multi-wall paths (level ≥ ~13)
  plain TCP holds the full link rate — the paper's claim;
* from Tx5 conditions down into the Figure-2 error region, plain TCP's
  congestion response strangles the transfer (timeouts, RTO backoff,
  stalls) while both remedies keep most of the rate;
* on this single-hop LAN, eager link ARQ beats the snoop agent —
  retry immediacy matters more than TCP-awareness, and snoop's
  dupack-clocked recovery starves once losses empty the pipe;
* under the spread-spectrum phone's stomping regime nothing below the
  transport layer saves the connection — the cases that motivated
  I-TCP-style splitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.environment.geometry import Point
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.scenarios import PHONE_NEAR
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.transport import LinkConfig, run_transfer
from repro.transport.snoop import run_snoop_transfer

SEGMENTS = 400
SEGMENT_BYTES = 1024
TIME_LIMIT_S = 240.0

# Operating points: the paper's environments by their signal level.
LEVEL_POINTS = (
    ("office (29.5)", 29.5, ()),
    ("Tx4-like (13.8)", 13.8, ()),
    ("Tx5-like (9.5)", 9.5, ()),
    ("region edge (8.0)", 8.0, ()),
    ("error region (7.0)", 7.0, ()),
    ("deep region (6.0)", 6.0, ()),
)

# plain / 3-retry link ARQ / snoop agent at the base station [5].
VARIANTS = ("plain", "arq", "snoop")


def _ss_phone_interference():
    return [
        SpreadSpectrumPhonePair(
            handset_position=Point(11.0, 8.7),
            base_position=PHONE_NEAR,
            base_level_at_1ft=31.5,
            name="rs-et909",
        )
    ]


@dataclass
class TransferOutcome:
    scenario: str
    variant: str  # "plain" | "arq" | "snoop"
    finished: bool
    throughput_bps: float
    segments_delivered: int
    tcp_retransmissions: int
    tcp_timeouts: int
    link_retransmissions: int

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6


@dataclass
class TcpResult:
    outcomes: list[TransferOutcome] = field(default_factory=list)

    def outcome(self, scenario: str, variant: str) -> TransferOutcome:
        for o in self.outcomes:
            if o.scenario == scenario and o.variant == variant:
                return o
        raise KeyError((scenario, variant))


def _run_point(
    scenario: str,
    level: float,
    interference,
    variant: str,
    segments: int,
    seed: int,
) -> TransferOutcome:
    config = LinkConfig(
        mean_level=level,
        arq_retries=3 if variant == "arq" else 0,
        interference=interference,
    )
    if variant == "snoop":
        sender, network, link, sim = run_snoop_transfer(
            config, total_segments=segments, seed=seed, time_limit_s=TIME_LIMIT_S
        )
        link_rtx = network.stats.local_retransmissions
    else:
        sender, link, sim = run_transfer(
            config, total_segments=segments, seed=seed, time_limit_s=TIME_LIMIT_S
        )
        link_rtx = link.stats.arq_retransmissions
    if sender.finished:
        throughput = segments * SEGMENT_BYTES * 8 / sender.finish_time
    else:
        throughput = sender.highest_acked * SEGMENT_BYTES * 8 / TIME_LIMIT_S
    return TransferOutcome(
        scenario=scenario,
        variant=variant,
        finished=sender.finished,
        throughput_bps=throughput,
        segments_delivered=sender.highest_acked,
        tcp_retransmissions=sender.stats.retransmissions,
        tcp_timeouts=sender.stats.timeouts,
        link_retransmissions=link_rtx,
    )


def _run_operating_point(
    scenario: str, level: float, ss_phone: bool, segments: int, seed: int
) -> list[TransferOutcome]:
    """All three recovery variants at one operating point.

    The variants intentionally share one seed so they face identical
    channel draws — the comparison isolates the recovery mechanism.
    """
    interference = _ss_phone_interference() if ss_phone else ()
    return [
        _run_point(scenario, level, interference, variant, segments, seed)
        for variant in VARIANTS
    ]


def _aggregate(ctx: PlanContext, values: list) -> TcpResult:
    result = TcpResult()
    for outcomes in values:
        result.outcomes.extend(outcomes)
    return result


@experiment(
    name="tcp",
    artifact="X9",
    description="X9: TCP-Reno over the error environment",
    aggregate=_aggregate,
    render=lambda result, scale: _render(result, scale),
    default_scale=1.0,
    default_seed=103,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per operating point (variants share its seed)."""
    segments = max(100, int(SEGMENTS * ctx.scale))
    plans = [
        TrialPlan(
            scenario,
            _run_operating_point,
            {
                "scenario": scenario,
                "level": level,
                "ss_phone": False,
                "segments": segments,
            },
        )
        for scenario, level, _ in LEVEL_POINTS
    ]
    # The stomping regime: SS phone base near the receiver.
    plans.append(
        TrialPlan(
            "SS phone, base near",
            _run_operating_point,
            {
                "scenario": "SS phone, base near",
                "level": 29.6,
                "ss_phone": True,
                "segments": max(60, segments // 4),
            },
        )
    )
    return plans


def run(scale: float = 1.0, seed: int = 103, jobs: int = 1) -> TcpResult:
    return ENGINE.run("tcp", scale=scale, seed=seed, jobs=jobs)


def _render(result: TcpResult, scale: float) -> None:
    print("Extension X9: TCP-Reno over the measured error environment")
    print(f"{'scenario':>20} | {'plain TCP':>12} | {'link ARQ x3':>12} | "
          f"{'snoop agent':>12} | {'plain rtx/to':>12}")
    scenarios = [s for s, _, _ in LEVEL_POINTS] + ["SS phone, base near"]
    for scenario in scenarios:
        plain = result.outcome(scenario, "plain")
        arq = result.outcome(scenario, "arq")
        snoop = result.outcome(scenario, "snoop")

        def cell(o: TransferOutcome) -> str:
            suffix = "" if o.finished else "*"
            return f"{o.throughput_mbps:5.2f}{suffix}"

        print(f"{scenario:>20} | {cell(plain):>12} | {cell(arq):>12} | "
              f"{cell(snoop):>12} | "
              f"{plain.tcp_retransmissions:6d}/{plain.tcp_timeouts:<4d}")
    print("(Mb/s; * = transfer did not complete within the time limit)")
    print("\nThe Section-9.3 landscape, quantified: down through Tx5-like "
          "conditions plain 1996-era TCP holds most of the link rate — "
          "'less aggressive approaches may suffice'.  In the error region "
          "TCP's congestion response collapses; the snoop agent [5] "
          "recovers much of it and eager link-layer ARQ nearly all of it "
          "(on a single-hop LAN, retry immediacy beats TCP-awareness; "
          "snoop's dupack clock starves once losses empty the pipe).  The "
          "SS-phone stomping regime defeats every sub-transport remedy.")


def main(scale: float = 1.0, seed: int = 103, jobs: int = 1) -> TcpResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
