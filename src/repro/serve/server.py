"""The asyncio ingest server: many sessions, incremental classification.

One :class:`TraceAnalysisServer` owns a listening socket (TCP or unix),
a persistent worker pool, and any number of live client sessions.  Per
session the data path is::

    socket -> FrameReader -> ring-slot lease -> bounded asyncio.Queue
           -> consumer (coalesces all ready chunks into one batch)
           -> classify batch (inline thread, or the session's sticky
              pool shard via reusable shared-memory ring slots)
           -> merge running verdict counts/digest -> per-chunk ACKs

**Backpressure.**  The queue between the socket reader and the
consumer is bounded (``queue_chunks``); when it fills, the reader
coroutine blocks in ``queue.put`` and simply stops reading the socket,
so kernel buffers fill and TCP flow control pushes back on the client.
On top of that the handshake advertises ``window_chunks`` and the
server ACKs every classified chunk, so a well-behaved client bounds
its own in-flight data without ever feeling a stall.  Memory per
session is therefore O(ring slots × slot bytes), independent of trace
length.

**Sharding and affinity.**  With ``jobs > 1`` the pool runs *sharded*
(:class:`~repro.parallel.PersistentPool` ``sharded=True``): every
session is pinned at HELLO to the least-loaded shard and all its
chunks classify on that one worker.  The worker's matcher cache
(:data:`_WORKER_MATCHERS`) therefore stays hot for the whole session —
the template bank builds once at session open, never churns, and the
per-chunk spec rehash disappears (the parent computes the cache key
once).  Chunk payloads cross the boundary through the session's
:class:`~repro.parallel.RingTransport`: a preallocated ring of
reusable shared-memory slots, one memcpy in, zero per-chunk segment
creation.  Ring overflow (payload too big, or every slot leased) falls
back to the one-shot file transport and is **counted loudly** —
``serve.ring_overflows``, the session summary, and ring stats all
report it.

**Coalescing.**  The consumer takes everything already queued (up to
``coalesce_chunks``) and classifies it as one batch: one executor
round-trip, one classifier pass, one digest update — then per-chunk
cumulative ACKs so client credit flow is unchanged.  Under load the
batch naturally grows toward the cap; an idle session degrades to
batch-of-one with no added latency.  Verdict digests are byte-identical
either way (:func:`~repro.analysis.classify.verdict_row_bytes` row
packing is chunking-independent).

**Telemetry.**  When an observability session is active the server
emits one ``serve.session`` span per completed session (child of one
``serve.run`` root), plus periodic ``heartbeat`` records with
aggregate packets/s, active sessions, and the deepest session queue —
the live signals ``timeline --follow`` tails.  Span ids use the same
deterministic derivation as every other span in the codebase, but are
emitted directly (not via the recorder's stack) because concurrent
sessions interleave; the tree stitches identically in the exporters.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro import obs
from repro.analysis.classify import (
    CLASS_ORDER,
    IncrementalClassifier,
    verdict_row_bytes,
)
from repro.analysis.matching import TraceMatcher
from repro.obs import resources as _resources
from repro.obs.spans import derive_span_id
from repro.parallel.handoff import (
    RingSlotHandle,
    RingTransport,
    TraceHandle,
    detach_ring,
    export_block,
    load_ring_slot,
)
from repro.parallel.pool import PersistentPool
from repro.serve import protocol
from repro.serve.protocol import FrameType, ProtocolError
from repro.trace.columnar import spec_from_dict, spec_to_dict


@dataclass
class ServeConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is in ``address``
    unix_path: Optional[str] = None  # takes precedence over host/port
    jobs: int = 1  # >1 fans chunk classification across sharded workers
    queue_chunks: int = 8  # bounded per-session queue (backpressure)
    window_chunks: int = 4  # in-flight credit advertised at handshake
    transport: str = "ring"  # chunk handoff: ring|shm|file|inline
    coalesce_chunks: int = 4  # max ready chunks classified as one batch
    ring_slots: Optional[int] = None  # None = queue + coalesce + 1
    ring_slot_bytes: Optional[int] = None  # None = sized off chunk one
    heartbeat_s: float = 1.0  # aggregate heartbeat period (0 = off)
    drain_timeout_s: float = 10.0  # grace for live sessions at stop()
    keep_verdicts: bool = False  # retain per-session verdict columns


@dataclass
class Session:
    """One client stream's running state."""

    id: str
    name: str
    spec: object
    packets_sent: int
    first_sequence: int
    queue: asyncio.Queue
    started_unix: float
    records: int = 0
    chunks: int = 0
    batches: int = 0
    max_queue_depth: int = 0
    counts: Counter = field(default_factory=Counter)
    digest: "object" = None  # running blake2b over verdict rows
    columns: list = field(default_factory=list)  # kept verdict columns
    matcher: Optional[TraceMatcher] = None  # inline-path cache
    spec_dict: Optional[dict] = None  # computed once at HELLO
    spec_key: Optional[tuple] = None  # worker matcher-cache key
    shard: Optional[int] = None  # sticky pool shard (jobs > 1)
    ring: Optional[RingTransport] = None  # reusable slot transport
    client_ring: bool = False  # client writes slots itself (CHUNK_REF)
    ring_overflows: int = 0
    digest_hex: Optional[str] = None  # worker-side digest, fetched once
    remote_finished: bool = False  # worker session state retired
    aborted: bool = False
    error: Optional[str] = None


#: A queued chunk on its way to classification: a leased ring slot, a
#: one-shot handle (file/shm/inline fallback), or raw bytes (no pool).
ChunkItem = Union[RingSlotHandle, TraceHandle, bytes]


# ----------------------------------------------------------------------
# Chunk classification (both sides of the pool boundary)
# ----------------------------------------------------------------------
_WORKER_MATCHERS: "OrderedDict[tuple, TraceMatcher]" = OrderedDict()

#: The cache key is client-controlled (spec + packets_sent from HELLO)
#: and one entry's template bank can run to tens of MB, so the cache
#: is a small LRU — a hostile or churning client can pin at most this
#: many banks in a worker, never unbounded memory.
_WORKER_MATCHER_CAP = 4


def _matcher_for(spec_key: tuple, spec_dict: dict, packets_sent: int) -> TraceMatcher:
    """Worker-side matcher cache: template banks are per (spec,
    packets_sent) and cost more to build than a chunk costs to match,
    so a long session reuses one across all its chunks."""
    matcher = _WORKER_MATCHERS.get(spec_key)
    if matcher is None:
        matcher = TraceMatcher(spec_from_dict(spec_dict), packets_sent)
        matcher.enable_template_cache()
        _WORKER_MATCHERS[spec_key] = matcher
        while len(_WORKER_MATCHERS) > _WORKER_MATCHER_CAP:
            _WORKER_MATCHERS.popitem(last=False)
    else:
        _WORKER_MATCHERS.move_to_end(spec_key)
    return matcher


def _load_item(item: ChunkItem):
    """One queued chunk back as a columnar trace (worker side)."""
    if isinstance(item, RingSlotHandle):
        return load_ring_slot(item)
    if isinstance(item, TraceHandle):
        return item.load()
    return protocol.decode_chunk(item)


#: Worker-side per-session state, keyed by session id.  Sticky
#: sharding routes every batch of a session to one worker, so the
#: running verdict digest can live *here* — the verdict columns never
#: cross the pool boundary at all (the batch result is a few counts),
#: which at streaming rates saves a pickle + copy of ~22 bytes per
#: record each way.
_WORKER_SESSIONS: dict = {}


def _worker_session_state() -> dict:
    import hashlib

    return {"digest": hashlib.blake2b(digest_size=8)}


def _session_open_remote(
    session_id: str, spec_key: tuple, spec_dict: dict, packets_sent: int
) -> bool:
    """Warm the shard's matcher cache at HELLO time, off the data path.

    The template bank (the expensive part) builds here, concurrent with
    the client's first sends, so chunk one classifies at steady-state
    speed.  Sticky sharding guarantees every later batch of the session
    finds this entry hot.  The call is fire-and-forget from the parent:
    the shard executor is single-worker FIFO, so it is guaranteed to
    run before the session's first batch without the handshake having
    to wait for a pool round-trip.
    """
    _matcher_for(spec_key, spec_dict, packets_sent)
    _WORKER_SESSIONS[session_id] = _worker_session_state()
    return True


def _batch_feed(
    items: Sequence[ChunkItem], matcher: TraceMatcher, packets_sent: int
) -> dict:
    """One classifier pass over a coalesced batch of chunks, in order.

    The verdicts come back as one set of compact columns plus
    per-chunk record counts (so the caller can ACK each chunk
    individually) and per-class counts.  Never returns per-record
    object graphs.
    """
    classifier = IncrementalClassifier(
        matcher.spec, packets_sent, matcher=matcher, collect_packets=False
    )
    chunk_records = []
    for item in items:
        trace = _load_item(item)
        classifier.feed_columnar(trace)
        chunk_records.append(trace.packets_received)
    return {
        "columns": classifier.verdict_columns(),
        "chunk_records": chunk_records,
        "batch_records": sum(chunk_records),
        "counts": {
            index: classifier.class_counts[cls]
            for index, cls in enumerate(CLASS_ORDER)
            if classifier.class_counts.get(cls)
        },
    }


def _classify_batch_remote(
    session_id: str,
    spec_key: tuple,
    spec_dict: dict,
    packets_sent: int,
    items: Sequence[ChunkItem],
    keep_columns: bool = False,
) -> dict:
    """Pool-worker entry: warm matcher, feed, fold into session state.

    The verdict digest accumulates worker-side; the columns themselves
    stay here unless the parent asked to keep them
    (``ServeConfig.keep_verdicts``).
    """
    matcher = _matcher_for(spec_key, spec_dict, packets_sent)
    result = _batch_feed(items, matcher, packets_sent)
    state = _WORKER_SESSIONS.get(session_id)
    if state is None:  # open was lost (pool restart); self-heal
        state = _WORKER_SESSIONS[session_id] = _worker_session_state()
    state["digest"].update(verdict_row_bytes(result["columns"]))
    if not keep_columns:
        del result["columns"]
    return result


def _session_finish_remote(session_id: str) -> dict:
    """Retire the worker's session state; returns the final digest."""
    state = _WORKER_SESSIONS.pop(session_id, None)
    if state is None:  # session never classified a batch
        state = _worker_session_state()
    return {"digest": state["digest"].hexdigest()}


def _session_close_remote(ring_name: Optional[str]) -> bool:
    """Drop the worker's cached ring attachment when a ring dies."""
    if ring_name is not None:
        detach_ring(ring_name)
    return True


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class TraceAnalysisServer:
    """Long-running ingest service over the framed protocol.

    Lifecycle::

        server = TraceAnalysisServer(ServeConfig(jobs=4))
        await server.start()          # binds; server.address is live
        ...                           # sessions come and go
        await server.stop()           # drain + shut the pool down
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        if self.config.transport not in ("ring", "shm", "file", "inline"):
            raise ValueError(
                f"unknown transport {self.config.transport!r}"
            )
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[PersistentPool] = None
        self._inline: Optional[ThreadPoolExecutor] = None
        self._sessions: dict[str, Session] = {}
        self._shard_sessions: list[int] = []
        # Warm-ring pool, keyed by (slots, slot_bytes).  Creating a
        # ring is cheap; *touching* it is not — every first write to a
        # fresh segment faults a zero page in, and at several MB per
        # slot the faults dominate the whole ingest path.  Rings are
        # returned here at session close and handed to the next
        # same-geometry session with their pages (and the workers'
        # cached attachments) still warm.
        self._ring_pool: dict[tuple[int, int], list[RingTransport]] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._accepting = False
        self._started_unix = 0.0
        self._started_perf = 0.0
        self._total_records = 0
        self._completed_sessions = 0
        # Deterministic span ids for concurrent sessions: our own
        # sibling ordinals per span name, same derivation as the
        # recorder's.
        self._span_ordinals: Counter = Counter()
        self._root_span_id: Optional[str] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self):
        """Where clients connect: ``path`` (unix) or ``(host, port)``."""
        if self.config.unix_path is not None:
            return self.config.unix_path
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        config = self.config
        if config.jobs > 1:
            self._pool = PersistentPool(config.jobs, sharded=True)
            self._shard_sessions = [0] * config.jobs
        else:
            self._inline = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-classify"
            )
        if config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=config.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=config.host, port=config.port
            )
        self._accepting = True
        self._started_unix = time.time()
        self._started_perf = time.perf_counter()
        self._root_span_id = self._next_span_id("serve.run", parent=None)
        if config.heartbeat_s > 0:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop()
            )

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, let live sessions finish
        (up to ``drain_timeout_s``), then tear the pool down."""
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handler_tasks:
            done, pending = await asyncio.wait(
                self._handler_tasks, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        for rings in self._ring_pool.values():
            for ring in rings:
                await self._destroy_ring(ring)
        self._ring_pool.clear()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._inline is not None:
            self._inline.shutdown(wait=True)
            self._inline = None
        self._emit_span(
            "serve.run",
            self._root_span_id,
            parent=None,
            start_unix=self._started_unix,
            wall_s=time.perf_counter() - self._started_perf,
            attrs={
                "sessions": self._completed_sessions,
                "records": self._total_records,
                "jobs": self.config.jobs,
            },
        )
        if self.config.unix_path is not None:
            try:
                os.unlink(self.config.unix_path)
            except OSError:
                pass

    # -- telemetry -----------------------------------------------------
    def _next_span_id(self, name: str, parent: Optional[str]) -> str:
        recorder = obs.STATE.spans
        if recorder is None:
            return ""
        key = (parent or "", name)
        index = self._span_ordinals[key]
        self._span_ordinals[key] = index + 1
        return derive_span_id(recorder.trace_id, parent, name, index)

    def _emit_span(
        self,
        name: str,
        span_id: Optional[str],
        parent: Optional[str],
        start_unix: float,
        wall_s: float,
        attrs: dict,
        status: str = "ok",
    ) -> None:
        """Emit one finished-span record with explicit parentage.

        Concurrent sessions cannot share the recorder's span *stack*
        (their lifetimes interleave), but their records are ordinary
        spans: same schema, same deterministic id derivation, so
        ``stats``/``timeline`` stitch them like any other tree.
        """
        recorder = obs.STATE.spans
        if recorder is None or not span_id:
            return
        record = {
            "type": "span",
            "trace": recorder.trace_id,
            "span": span_id,
            "parent": parent,
            "name": name,
            "pid": os.getpid(),
            "start_unix": start_unix,
            "attrs": dict(attrs),
            "wall_s": wall_s,
            "cpu_s": 0.0,
            "rss_delta_kb": 0,
            "status": status,
        }
        recorder.finished.append(record)
        if recorder.sink is not None:
            recorder.sink.emit(record)

    async def _heartbeat_loop(self) -> None:
        state = obs.STATE
        last_records = 0
        last_time = time.perf_counter()
        while True:
            await asyncio.sleep(self.config.heartbeat_s)
            now = time.perf_counter()
            rate = (self._total_records - last_records) / max(
                now - last_time, 1e-9
            )
            last_records = self._total_records
            last_time = now
            depth = max(
                (s.queue.qsize() for s in self._sessions.values()),
                default=0,
            )
            if state.enabled:
                state.metrics.gauge("serve.sessions").set(
                    len(self._sessions)
                )
                state.metrics.gauge("serve.packets_per_s").set(rate)
                state.metrics.gauge("serve.queue_depth").set(depth)
            if state.enabled and state.sink is not None:
                state.sink.emit({
                    "type": "heartbeat",
                    "label": "serve",
                    "done": self._total_records,
                    "total": self._total_records,
                    "packets_offered": self._total_records,
                    "packets_per_s": round(rate, 1),
                    "sessions": len(self._sessions),
                    "queue_depth": depth,
                    "rss_kb": _resources.rss_kb(),
                    "unix": time.time(),
                })
                state.sink.flush()

    # -- per-connection ------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        try:
            await self._handle_client(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _pick_shard(self) -> int:
        """Least-loaded shard for a new session (sticky thereafter)."""
        return min(
            range(len(self._shard_sessions)),
            key=self._shard_sessions.__getitem__,
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        import hashlib

        config = self.config
        frames = protocol.FrameReader(reader)
        try:
            first = await frames.read_frame()
        except ProtocolError as exc:
            await self._send_error(writer, str(exc))
            return
        if first is None:
            return  # connected and left; not worth a session
        frame_type, payload = first
        if frame_type is not FrameType.HELLO:
            await self._send_error(
                writer, f"expected HELLO, got {frame_type.name}"
            )
            return
        try:
            hello = protocol.parse_hello(bytes(payload))
        except ProtocolError as exc:
            await self._send_error(writer, str(exc))
            return
        if not self._accepting:
            await self._send_error(writer, "server is draining")
            return
        session_id = str(hello["session"])
        if session_id in self._sessions:
            # Session ids are client-chosen and key the live-session
            # table; letting a second connection reuse a live id would
            # clobber the first session's entry and gauges.
            await self._send_error(
                writer, f"session id {session_id!r} is already active"
            )
            return

        spec = hello["spec"]
        spec_dict = spec_to_dict(spec)
        packets_sent = int(hello["packets_sent"])
        session = Session(
            id=session_id,
            name=str(hello["name"]),
            spec=spec,
            packets_sent=packets_sent,
            first_sequence=int(hello.get("first_sequence", 0)),
            queue=asyncio.Queue(maxsize=config.queue_chunks),
            started_unix=time.time(),
            digest=hashlib.blake2b(digest_size=8),
            spec_dict=spec_dict,
            spec_key=(tuple(sorted(spec_dict.items())), packets_sent),
        )
        self._sessions[session.id] = session
        if self._pool is not None:
            session.shard = self._pick_shard()
            self._shard_sessions[session.shard] += 1
            # Build the shard's template bank now, overlapped with the
            # client's first sends — chunk one then classifies warm.
            # Fire-and-forget: the shard is FIFO, so this runs before
            # the first batch without stalling the handshake on a pool
            # round-trip.
            self._pool.submit(
                _session_open_remote,
                session.id,
                session.spec_key,
                spec_dict,
                packets_sent,
                shard=session.shard,
            ).add_done_callback(lambda f: f.exception())
        started_perf = time.perf_counter()
        span_id = self._next_span_id("serve.session", self._root_span_id)
        hello_ok = {
            "session": session.id,
            "window_chunks": config.window_chunks,
            "queue_chunks": config.queue_chunks,
        }
        if (
            config.transport == "ring"
            and hello.get("shm_ring")
            and int(hello.get("chunk_bytes") or 0) > 0
        ):
            # Same-host fast path: grant the client direct slot access.
            # The client writes chunk payloads into the ring itself and
            # sends CHUNK_REF frames; the socket stops carrying frame
            # bytes.  ``chunk_bytes`` (the client's largest payload)
            # sizes the slots up front.
            ring = self._ring_for(session, int(hello["chunk_bytes"]))
            session.client_ring = True
            hello_ok["ring"] = {
                "name": ring.name,
                "slots": ring.slots,
                "slot_bytes": ring.slot_bytes,
            }
        protocol.write_frame(
            writer, FrameType.HELLO_OK, protocol.encode_json(hello_ok)
        )
        await writer.drain()

        consumer = asyncio.create_task(self._consume(session, writer))
        try:
            await self._read_session(frames, session)
        finally:
            await consumer
            await self._close_session(session)
            self._sessions.pop(session.id, None)
            self._completed_sessions += 1
            state = obs.STATE
            if state.enabled:
                state.metrics.counter("serve.sessions_completed").inc()
                state.metrics.counter("serve.records_ingested").inc(
                    session.records
                )
            self._emit_span(
                "serve.session",
                span_id,
                parent=self._root_span_id,
                start_unix=session.started_unix,
                wall_s=time.perf_counter() - started_perf,
                attrs={
                    "session": session.id,
                    "name": session.name,
                    "records": session.records,
                    "chunks": session.chunks,
                    "batches": session.batches,
                    "shard": session.shard,
                    "ring_overflows": session.ring_overflows,
                    "max_queue_depth": session.max_queue_depth,
                    "aborted": session.aborted,
                },
                status="error" if session.error else "ok",
            )

    #: Warm rings kept per geometry; beyond this, closing sessions
    #: destroy their ring outright.  Sized for the bench's concurrency
    #: sweet spot; excess rings are only ever untouched pages anyway.
    _RING_POOL_CAP = 32

    async def _close_session(self, session: Session) -> None:
        """Release per-session transport state (consumer has exited)."""
        if (
            self._pool is not None
            and session.shard is not None
            and not session.remote_finished
        ):
            # Aborted session: its worker-side digest state was never
            # fetched; retire it so the worker's table can't grow.
            self._pool.submit(
                _session_finish_remote, session.id, shard=session.shard
            ).add_done_callback(lambda f: f.exception())
        if session.ring is not None:
            ring, session.ring = session.ring, None
            pool = self._ring_pool.setdefault(
                (ring.slots, ring.slot_bytes), []
            )
            if self._accepting and len(pool) < self._RING_POOL_CAP:
                # Keep it warm for the next same-geometry session; the
                # workers' cached attachments stay valid because the
                # segment (and its name) lives on.
                pool.append(ring)
            else:
                await self._destroy_ring(ring)
        if session.shard is not None and self._shard_sessions:
            self._shard_sessions[session.shard] -= 1

    async def _destroy_ring(self, ring: RingTransport) -> None:
        """Drop every process's attachment, then unlink the segment."""
        if self._pool is not None:
            for shard in range(self.config.jobs):
                try:
                    await self._pool.run(
                        _session_close_remote, ring.name, shard=shard
                    )
                except Exception:  # pragma: no cover - pool dying
                    pass
        else:
            # Inline mode classified in-process; drop this process's
            # cached attachment before unlinking.
            detach_ring(ring.name)
        ring.close()

    # -- chunk staging (reader side) -----------------------------------
    def _ring_for(self, session: Session, nbytes: int) -> RingTransport:
        """The session's slot ring, created lazily off chunk one.

        Slot capacity defaults to the first chunk's size plus ~12%
        headroom (trailing short chunks are smaller, equal-size chunks
        jitter by a few header bytes), rounded up to 4 KiB pages;
        slot count covers the full pipeline: everything the queue can
        hold, a batch in flight, the chunk being staged, and — for
        client-written rings — the client's full credit window.
        """
        if session.ring is None:
            config = self.config
            slot_bytes = config.ring_slot_bytes or max(
                4096, (nbytes + nbytes // 8 + 4095) & ~4095
            )
            slots = config.ring_slots or (
                config.queue_chunks
                + max(1, config.coalesce_chunks)
                + config.window_chunks
                + 1
            )
            pool = self._ring_pool.get((slots, slot_bytes))
            if pool:
                session.ring = pool.pop()
                session.ring.reset()
            else:
                session.ring = RingTransport(slots, slot_bytes)
        return session.ring

    def _stage_chunk(
        self, session: Session, payload: memoryview
    ) -> ChunkItem:
        """Copy a CHUNK payload out of the frame buffer, once, into
        whatever vehicle carries it to classification."""
        if session.client_ring:
            # The client normally writes slots itself; a full CHUNK
            # frame here means its ring overflowed (slot shortage or
            # oversized payload) — count it exactly like a server-side
            # overflow and take the slow lane.
            self._count_overflow(session)
            if self._pool is None:
                return bytes(payload)
            return export_block(bytes(payload), via="file")
        if self._pool is None:
            return bytes(payload)
        transport = self.config.transport
        if transport == "ring":
            slot = self._ring_for(session, len(payload)).lease(payload)
            if slot is not None:
                return slot
            # Loud fallback: the one-shot file transport always works,
            # and every path that can observe the slowdown sees why.
            self._count_overflow(session)
            return export_block(bytes(payload), via="file")
        return export_block(bytes(payload), via=transport)

    @staticmethod
    def _count_overflow(session: Session) -> None:
        session.ring_overflows += 1
        state = obs.STATE
        if state.enabled:
            state.metrics.counter("serve.ring_overflows").inc()

    def _resolve_chunk_ref(
        self, session: Session, payload: memoryview
    ) -> RingSlotHandle:
        """Validate a client-written slot reference against the grant."""
        if not session.client_ring or session.ring is None:
            raise ProtocolError(
                "CHUNK_REF without a granted shared-memory ring"
            )
        slot, nbytes = protocol.parse_chunk_ref(payload)
        ring = session.ring
        if slot >= ring.slots or nbytes > ring.slot_bytes:
            raise ProtocolError(
                f"CHUNK_REF out of bounds (slot={slot}, nbytes={nbytes}, "
                f"ring has {ring.slots} slots of {ring.slot_bytes})"
            )
        return RingSlotHandle(
            ring=ring.name,
            index=slot,
            offset=slot * ring.slot_bytes,
            nbytes=nbytes,
        )

    async def _read_session(
        self, frames: protocol.FrameReader, session: Session
    ) -> None:
        """The socket-side half: frames into the bounded queue.

        ``queue.put`` blocking here *is* the backpressure mechanism —
        while the queue is full this coroutine does not read, the
        kernel receive buffer fills, and the client's sends stall.

        Whatever ends the loop — END, EOF, a protocol violation, or an
        abrupt disconnect (TCP RST raises ``ConnectionResetError`` out
        of the stream reader, not a clean EOF) — the ``finally`` always
        enqueues the ``None`` sentinel, so the consumer task the
        handler awaits can never be left blocked on an empty queue.
        """
        try:
            while True:
                try:
                    item = await frames.read_frame()
                except ProtocolError as exc:
                    session.aborted = True
                    session.error = str(exc)
                    return
                except (ConnectionError, OSError) as exc:
                    session.aborted = True
                    session.error = f"connection lost: {exc}"
                    return
                if item is None:  # EOF without END: client died
                    session.aborted = True
                    session.error = "connection closed before END"
                    return
                frame_type, payload = item
                if frame_type is FrameType.CHUNK:
                    await session.queue.put(
                        self._stage_chunk(session, payload)
                    )
                    session.max_queue_depth = max(
                        session.max_queue_depth, session.queue.qsize()
                    )
                elif frame_type is FrameType.CHUNK_REF:
                    try:
                        handle = self._resolve_chunk_ref(session, payload)
                    except ProtocolError as exc:
                        session.aborted = True
                        session.error = str(exc)
                        return
                    await session.queue.put(handle)
                    session.max_queue_depth = max(
                        session.max_queue_depth, session.queue.qsize()
                    )
                elif frame_type is FrameType.END:
                    return
                else:
                    session.aborted = True
                    session.error = (
                        f"unexpected {frame_type.name} mid-stream"
                    )
                    return
        finally:
            await session.queue.put(None)

    # -- classification (consumer side) --------------------------------
    @staticmethod
    def _discard_batch(session: Session, batch: list) -> None:
        """Give batch resources back without classifying (error paths).

        Server-leased ring slots return to the free list (client-owned
        slots stay the client's — the session teardown unlinks the
        whole ring anyway); one-shot handles release best-effort (a
        worker that already consumed one made its location vanish,
        which ``release`` treats as done).
        """
        for item in batch:
            if isinstance(item, RingSlotHandle):
                if session.ring is not None and not session.client_ring:
                    session.ring.release(item.index)
            elif isinstance(item, TraceHandle):
                item.release()

    async def _consume(
        self, session: Session, writer: asyncio.StreamWriter
    ) -> None:
        """The classify-side half: coalesced batches off the queue.

        Each wakeup drains every already-queued chunk (up to
        ``coalesce_chunks``) into one classify call — one executor
        round-trip and one digest update amortized across the batch —
        then ACKs each chunk individually so client credit accounting
        never notices the batching.
        """
        config = self.config
        state = obs.STATE
        limit = max(1, config.coalesce_chunks)
        finished = False
        while not finished:
            item = await session.queue.get()
            if item is None:
                break
            batch = [item]
            while len(batch) < limit:
                try:
                    extra = session.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    finished = True
                    break
                batch.append(extra)
            try:
                result = await self._classify_batch(session, batch)
            except Exception as exc:  # must not kill the drain loop
                session.aborted = True
                session.error = f"classification failed: {exc}"
                self._discard_batch(session, batch)
                await self._send_error(writer, session.error)
                continue  # keep draining to unblock the reader
            if not session.client_ring:
                for item in batch:
                    if isinstance(item, RingSlotHandle):
                        session.ring.release(item.index)
            batch_records = int(result["batch_records"])
            acked_records = session.records
            session.records += batch_records
            self._total_records += batch_records
            session.batches += 1
            for code, count in result["counts"].items():
                session.counts[CLASS_ORDER[int(code)]] += int(count)
            if self._pool is None:
                # Inline mode digests here; pool sessions accumulate
                # the digest in their sticky worker and hand it back
                # once at session end.
                session.digest.update(
                    verdict_row_bytes(result["columns"])
                )
            if config.keep_verdicts:
                session.columns.append(result["columns"])
            if state.enabled and len(batch) > 1:
                state.metrics.counter("serve.coalesced_batches").inc()
                state.metrics.counter("serve.coalesced_chunks").inc(
                    len(batch)
                )
            try:
                for item, chunk_records in zip(
                    batch, result["chunk_records"]
                ):
                    session.chunks += 1
                    acked_records += chunk_records
                    ack = {
                        "session": session.id,
                        "records": acked_records,
                        "chunks": session.chunks,
                    }
                    if session.client_ring and isinstance(
                        item, RingSlotHandle
                    ):
                        # Hand the client its slot back with the ACK.
                        ack["released"] = [item.index]
                    protocol.write_frame(
                        writer, FrameType.ACK, protocol.encode_json(ack)
                    )
                await writer.drain()
            except (ConnectionError, OSError):
                session.aborted = True
                session.error = "client went away mid-ACK"
        if session.aborted:
            return
        if self._pool is not None and session.shard is not None:
            try:
                finish = await self._pool.run(
                    _session_finish_remote, session.id,
                    shard=session.shard,
                )
                session.digest_hex = finish["digest"]
            except Exception:  # pragma: no cover - pool dying
                session.digest_hex = ""
            session.remote_finished = True
        try:
            protocol.write_frame(
                writer, FrameType.SUMMARY, protocol.encode_json(
                    self._summary(session)
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            session.aborted = True

    def _summary(self, session: Session) -> dict:
        wall_s = max(time.time() - session.started_unix, 1e-9)
        doc = {
            "session": session.id,
            "name": session.name,
            "records": session.records,
            "chunks": session.chunks,
            "batches": session.batches,
            "counts": {
                cls.value: session.counts.get(cls, 0)
                for cls in CLASS_ORDER
            },
            "verdict_digest": (
                session.digest_hex
                if session.digest_hex is not None
                else session.digest.hexdigest()
            ),
            "max_queue_depth": session.max_queue_depth,
            "queue_chunks": self.config.queue_chunks,
            "transport": (
                self.config.transport if self._pool is not None
                else "inline"
            ),
            "shard": session.shard,
            "ring_overflows": session.ring_overflows,
            "wall_s": round(wall_s, 6),
            "packets_per_s": round(session.records / wall_s, 1),
        }
        if session.ring is not None:
            doc["ring"] = session.ring.stats()
        return doc

    async def _classify_batch(
        self, session: Session, batch: list
    ) -> dict:
        """One batch through the right lane: sticky shard or thread."""
        if self._pool is not None:
            return await self._pool.run(
                _classify_batch_remote,
                session.id,
                session.spec_key,
                session.spec_dict,
                session.packets_sent,
                batch,
                self.config.keep_verdicts,
                shard=session.shard,
            )
        if session.matcher is None:
            session.matcher = _matcher_for(
                session.spec_key, session.spec_dict, session.packets_sent
            )
        assert self._inline is not None
        return await asyncio.get_running_loop().run_in_executor(
            self._inline,
            _batch_feed,
            batch,
            session.matcher,
            session.packets_sent,
        )

    async def _send_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        try:
            protocol.write_frame(
                writer,
                FrameType.ERROR,
                protocol.encode_json({"error": message}),
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def run_server(config: ServeConfig) -> None:
    """Start, print the address, and serve until cancelled (the CLI
    entry; SIGINT and SIGTERM both drain gracefully).

    SIGTERM matters for the shm ring transport: the segments live in
    ``/dev/shm`` until :meth:`TraceAnalysisServer.stop` unlinks them,
    so dying on the default signal action (as under ``systemd stop``
    or a container runtime's termination grace period) would leak one
    ring per live-or-pooled session and orphan the shard workers.
    """
    server = TraceAnalysisServer(config)
    await server.start()
    address = server.address
    if isinstance(address, str):
        print(f"serving on unix:{address} (jobs={config.jobs})")
    else:
        print(
            f"serving on {address[0]}:{address[1]} (jobs={config.jobs})"
        )
    loop = asyncio.get_running_loop()
    task = asyncio.current_task()
    sigterm_hooked = False
    try:
        loop.add_signal_handler(signal.SIGTERM, task.cancel)
        sigterm_hooked = True
    except (NotImplementedError, ValueError):  # pragma: no cover
        pass  # non-unix loop, or not on the main thread
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if sigterm_hooked:
            loop.remove_signal_handler(signal.SIGTERM)
        await server.stop()
