"""The asyncio ingest server: many sessions, incremental classification.

One :class:`TraceAnalysisServer` owns a listening socket (TCP or unix),
a persistent worker pool, and any number of live client sessions.  Per
session the data path is::

    socket -> read_frame -> bounded asyncio.Queue -> consumer
           -> classify chunk (inline thread, or pool worker via a
              shared-memory TraceHandle)
           -> merge running verdict counts/digest -> ACK

**Backpressure.**  The queue between the socket reader and the
consumer is bounded (``queue_chunks``); when it fills, the reader
coroutine blocks in ``queue.put`` and simply stops reading the socket,
so kernel buffers fill and TCP flow control pushes back on the client.
On top of that the handshake advertises ``window_chunks`` and the
server ACKs every classified chunk, so a well-behaved client bounds
its own in-flight data without ever feeling a stall.  Memory per
session is therefore O(queue_chunks × chunk bytes), independent of
trace length.

**Sharding.**  With ``jobs > 1`` every chunk classification is shipped
to a :class:`~repro.parallel.PersistentPool` worker as a
:class:`~repro.parallel.TraceHandle` (shared-memory by default — the
chunk payload *is* a v2 columnar block, so it crosses the boundary
without re-encoding) and comes back as compact verdict columns.
Sessions progress independently; N sessions saturate N workers.  With
``jobs <= 1`` chunks classify on a single worker thread, keeping the
event loop responsive.

**Telemetry.**  When an observability session is active the server
emits one ``serve.session`` span per completed session (child of one
``serve.run`` root), plus periodic ``heartbeat`` records with
aggregate packets/s, active sessions, and the deepest session queue —
the live signals ``timeline --follow`` tails.  Span ids use the same
deterministic derivation as every other span in the codebase, but are
emitted directly (not via the recorder's stack) because concurrent
sessions interleave; the tree stitches identically in the exporters.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs
from repro.analysis.classify import (
    CLASS_ORDER,
    IncrementalClassifier,
    verdict_row_bytes,
)
from repro.analysis.matching import TraceMatcher
from repro.obs import resources as _resources
from repro.obs.spans import derive_span_id
from repro.parallel.handoff import TraceHandle, export_block
from repro.parallel.pool import PersistentPool
from repro.serve import protocol
from repro.serve.protocol import FrameType, ProtocolError
from repro.trace.columnar import spec_from_dict, spec_to_dict


@dataclass
class ServeConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is in ``address``
    unix_path: Optional[str] = None  # takes precedence over host/port
    jobs: int = 1  # >1 fans chunk classification across a process pool
    queue_chunks: int = 8  # bounded per-session queue (backpressure)
    window_chunks: int = 4  # in-flight credit advertised at handshake
    transport: str = "shm"  # chunk handoff to workers: shm|file|inline
    heartbeat_s: float = 1.0  # aggregate heartbeat period (0 = off)
    drain_timeout_s: float = 10.0  # grace for live sessions at stop()
    keep_verdicts: bool = False  # retain per-session verdict columns


@dataclass
class Session:
    """One client stream's running state."""

    id: str
    name: str
    spec: object
    packets_sent: int
    first_sequence: int
    queue: asyncio.Queue
    started_unix: float
    records: int = 0
    chunks: int = 0
    max_queue_depth: int = 0
    counts: Counter = field(default_factory=Counter)
    digest: "object" = None  # running blake2b over verdict rows
    columns: list = field(default_factory=list)  # kept verdict columns
    matcher: Optional[TraceMatcher] = None  # inline-path cache
    aborted: bool = False
    error: Optional[str] = None


# ----------------------------------------------------------------------
# Chunk classification (both sides of the pool boundary)
# ----------------------------------------------------------------------
_WORKER_MATCHERS: "OrderedDict[tuple, TraceMatcher]" = OrderedDict()

#: The cache key is client-controlled (spec + packets_sent from HELLO)
#: and one entry's template bank can run to tens of MB, so the cache
#: is a small LRU — a hostile or churning client can pin at most this
#: many banks in a worker, never unbounded memory.
_WORKER_MATCHER_CAP = 4


def _matcher_for(spec_key: tuple, spec_dict: dict, packets_sent: int) -> TraceMatcher:
    """Worker-side matcher cache: template banks are per (spec,
    packets_sent) and cost more to build than a chunk costs to match,
    so a long session reuses one across all its chunks."""
    matcher = _WORKER_MATCHERS.get(spec_key)
    if matcher is None:
        matcher = TraceMatcher(spec_from_dict(spec_dict), packets_sent)
        matcher.enable_template_cache()
        _WORKER_MATCHERS[spec_key] = matcher
        while len(_WORKER_MATCHERS) > _WORKER_MATCHER_CAP:
            _WORKER_MATCHERS.popitem(last=False)
    else:
        _WORKER_MATCHERS.move_to_end(spec_key)
    return matcher


def _classify_chunk_remote(
    handle: TraceHandle, spec_dict: dict, packets_sent: int
) -> dict:
    """Pool-worker entry: load the chunk block, classify, return
    compact verdict columns (never per-record object graphs)."""
    trace = handle.load()
    spec_key = (tuple(sorted(spec_dict.items())), packets_sent)
    matcher = _matcher_for(spec_key, spec_dict, packets_sent)
    classifier = IncrementalClassifier(
        matcher.spec, packets_sent, matcher=matcher, collect_packets=False
    )
    classifier.feed_columnar(trace)
    return classifier.verdict_columns()


def _classify_chunk_inline(
    payload: bytes, matcher: TraceMatcher
) -> dict:
    """Inline (thread) twin of :func:`_classify_chunk_remote`."""
    trace = protocol.decode_chunk(payload)
    classifier = IncrementalClassifier(
        matcher.spec, matcher.packets_sent, matcher=matcher,
        collect_packets=False,
    )
    classifier.feed_columnar(trace)
    return classifier.verdict_columns()


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class TraceAnalysisServer:
    """Long-running ingest service over the framed protocol.

    Lifecycle::

        server = TraceAnalysisServer(ServeConfig(jobs=4))
        await server.start()          # binds; server.address is live
        ...                           # sessions come and go
        await server.stop()           # drain + shut the pool down
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[PersistentPool] = None
        self._inline: Optional[ThreadPoolExecutor] = None
        self._sessions: dict[str, Session] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._accepting = False
        self._started_unix = 0.0
        self._started_perf = 0.0
        self._total_records = 0
        self._completed_sessions = 0
        # Deterministic span ids for concurrent sessions: our own
        # sibling ordinals per span name, same derivation as the
        # recorder's.
        self._span_ordinals: Counter = Counter()
        self._root_span_id: Optional[str] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self):
        """Where clients connect: ``path`` (unix) or ``(host, port)``."""
        if self.config.unix_path is not None:
            return self.config.unix_path
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        config = self.config
        if config.jobs > 1:
            self._pool = PersistentPool(config.jobs)
        else:
            self._inline = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-classify"
            )
        if config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=config.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=config.host, port=config.port
            )
        self._accepting = True
        self._started_unix = time.time()
        self._started_perf = time.perf_counter()
        self._root_span_id = self._next_span_id("serve.run", parent=None)
        if config.heartbeat_s > 0:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop()
            )

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, let live sessions finish
        (up to ``drain_timeout_s``), then tear the pool down."""
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handler_tasks:
            done, pending = await asyncio.wait(
                self._handler_tasks, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._inline is not None:
            self._inline.shutdown(wait=True)
            self._inline = None
        self._emit_span(
            "serve.run",
            self._root_span_id,
            parent=None,
            start_unix=self._started_unix,
            wall_s=time.perf_counter() - self._started_perf,
            attrs={
                "sessions": self._completed_sessions,
                "records": self._total_records,
                "jobs": self.config.jobs,
            },
        )
        if self.config.unix_path is not None:
            try:
                os.unlink(self.config.unix_path)
            except OSError:
                pass

    # -- telemetry -----------------------------------------------------
    def _next_span_id(self, name: str, parent: Optional[str]) -> str:
        recorder = obs.STATE.spans
        if recorder is None:
            return ""
        key = (parent or "", name)
        index = self._span_ordinals[key]
        self._span_ordinals[key] = index + 1
        return derive_span_id(recorder.trace_id, parent, name, index)

    def _emit_span(
        self,
        name: str,
        span_id: Optional[str],
        parent: Optional[str],
        start_unix: float,
        wall_s: float,
        attrs: dict,
        status: str = "ok",
    ) -> None:
        """Emit one finished-span record with explicit parentage.

        Concurrent sessions cannot share the recorder's span *stack*
        (their lifetimes interleave), but their records are ordinary
        spans: same schema, same deterministic id derivation, so
        ``stats``/``timeline`` stitch them like any other tree.
        """
        recorder = obs.STATE.spans
        if recorder is None or not span_id:
            return
        record = {
            "type": "span",
            "trace": recorder.trace_id,
            "span": span_id,
            "parent": parent,
            "name": name,
            "pid": os.getpid(),
            "start_unix": start_unix,
            "attrs": dict(attrs),
            "wall_s": wall_s,
            "cpu_s": 0.0,
            "rss_delta_kb": 0,
            "status": status,
        }
        recorder.finished.append(record)
        if recorder.sink is not None:
            recorder.sink.emit(record)

    async def _heartbeat_loop(self) -> None:
        state = obs.STATE
        last_records = 0
        last_time = time.perf_counter()
        while True:
            await asyncio.sleep(self.config.heartbeat_s)
            now = time.perf_counter()
            rate = (self._total_records - last_records) / max(
                now - last_time, 1e-9
            )
            last_records = self._total_records
            last_time = now
            depth = max(
                (s.queue.qsize() for s in self._sessions.values()),
                default=0,
            )
            if state.enabled:
                state.metrics.gauge("serve.sessions").set(
                    len(self._sessions)
                )
                state.metrics.gauge("serve.packets_per_s").set(rate)
                state.metrics.gauge("serve.queue_depth").set(depth)
            if state.enabled and state.sink is not None:
                state.sink.emit({
                    "type": "heartbeat",
                    "label": "serve",
                    "done": self._total_records,
                    "total": self._total_records,
                    "packets_offered": self._total_records,
                    "packets_per_s": round(rate, 1),
                    "sessions": len(self._sessions),
                    "queue_depth": depth,
                    "rss_kb": _resources.rss_kb(),
                    "unix": time.time(),
                })
                state.sink.flush()

    # -- per-connection ------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        try:
            await self._handle_client(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        import hashlib

        config = self.config
        try:
            first = await protocol.read_frame(reader)
        except ProtocolError as exc:
            await self._send_error(writer, str(exc))
            return
        if first is None:
            return  # connected and left; not worth a session
        frame_type, payload = first
        if frame_type is not FrameType.HELLO:
            await self._send_error(
                writer, f"expected HELLO, got {frame_type.name}"
            )
            return
        try:
            hello = protocol.parse_hello(payload)
        except ProtocolError as exc:
            await self._send_error(writer, str(exc))
            return
        if not self._accepting:
            await self._send_error(writer, "server is draining")
            return
        session_id = str(hello["session"])
        if session_id in self._sessions:
            # Session ids are client-chosen and key the live-session
            # table; letting a second connection reuse a live id would
            # clobber the first session's entry and gauges.
            await self._send_error(
                writer, f"session id {session_id!r} is already active"
            )
            return

        session = Session(
            id=session_id,
            name=str(hello["name"]),
            spec=hello["spec"],
            packets_sent=int(hello["packets_sent"]),
            first_sequence=int(hello.get("first_sequence", 0)),
            queue=asyncio.Queue(maxsize=config.queue_chunks),
            started_unix=time.time(),
            digest=hashlib.blake2b(digest_size=8),
        )
        self._sessions[session.id] = session
        started_perf = time.perf_counter()
        span_id = self._next_span_id("serve.session", self._root_span_id)
        protocol.write_frame(
            writer,
            FrameType.HELLO_OK,
            protocol.encode_json({
                "session": session.id,
                "window_chunks": config.window_chunks,
                "queue_chunks": config.queue_chunks,
            }),
        )
        await writer.drain()

        consumer = asyncio.create_task(self._consume(session, writer))
        try:
            await self._read_session(reader, session)
        finally:
            await consumer
            self._sessions.pop(session.id, None)
            self._completed_sessions += 1
            state = obs.STATE
            if state.enabled:
                state.metrics.counter("serve.sessions_completed").inc()
                state.metrics.counter("serve.records_ingested").inc(
                    session.records
                )
            self._emit_span(
                "serve.session",
                span_id,
                parent=self._root_span_id,
                start_unix=session.started_unix,
                wall_s=time.perf_counter() - started_perf,
                attrs={
                    "session": session.id,
                    "name": session.name,
                    "records": session.records,
                    "chunks": session.chunks,
                    "max_queue_depth": session.max_queue_depth,
                    "aborted": session.aborted,
                },
                status="error" if session.error else "ok",
            )

    async def _read_session(
        self, reader: asyncio.StreamReader, session: Session
    ) -> None:
        """The socket-side half: frames into the bounded queue.

        ``queue.put`` blocking here *is* the backpressure mechanism —
        while the queue is full this coroutine does not read, the
        kernel receive buffer fills, and the client's sends stall.

        Whatever ends the loop — END, EOF, a protocol violation, or an
        abrupt disconnect (TCP RST raises ``ConnectionResetError`` out
        of the stream reader, not a clean EOF) — the ``finally`` always
        enqueues the ``None`` sentinel, so the consumer task the
        handler awaits can never be left blocked on an empty queue.
        """
        try:
            while True:
                try:
                    item = await protocol.read_frame(reader)
                except ProtocolError as exc:
                    session.aborted = True
                    session.error = str(exc)
                    return
                except (ConnectionError, OSError) as exc:
                    session.aborted = True
                    session.error = f"connection lost: {exc}"
                    return
                if item is None:  # EOF without END: client died
                    session.aborted = True
                    session.error = "connection closed before END"
                    return
                frame_type, payload = item
                if frame_type is FrameType.CHUNK:
                    await session.queue.put(payload)
                    session.max_queue_depth = max(
                        session.max_queue_depth, session.queue.qsize()
                    )
                elif frame_type is FrameType.END:
                    return
                else:
                    session.aborted = True
                    session.error = (
                        f"unexpected {frame_type.name} mid-stream"
                    )
                    return
        finally:
            await session.queue.put(None)

    async def _consume(
        self, session: Session, writer: asyncio.StreamWriter
    ) -> None:
        """The classify-side half: chunks off the queue, in order."""
        config = self.config
        while True:
            payload = await session.queue.get()
            if payload is None:
                break
            try:
                columns = await self._classify(session, payload)
            except Exception as exc:  # classification must not kill the loop
                session.aborted = True
                session.error = f"classification failed: {exc}"
                await self._send_error(writer, session.error)
                continue  # keep draining the queue to unblock the reader
            codes = columns["class_codes"]
            session.records += int(codes.shape[0])
            session.chunks += 1
            self._total_records += int(codes.shape[0])
            for code, count in zip(
                *np.unique(codes, return_counts=True)
            ):
                session.counts[CLASS_ORDER[int(code)]] += int(count)
            session.digest.update(verdict_row_bytes(columns))
            if config.keep_verdicts:
                session.columns.append(columns)
            try:
                protocol.write_frame(
                    writer,
                    FrameType.ACK,
                    protocol.encode_json({
                        "session": session.id,
                        "records": session.records,
                        "chunks": session.chunks,
                    }),
                )
                await writer.drain()
            except (ConnectionError, OSError):
                session.aborted = True
                session.error = "client went away mid-ACK"
        if session.aborted:
            return
        try:
            protocol.write_frame(
                writer, FrameType.SUMMARY, protocol.encode_json(
                    self._summary(session)
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            session.aborted = True

    def _summary(self, session: Session) -> dict:
        wall_s = max(time.time() - session.started_unix, 1e-9)
        return {
            "session": session.id,
            "name": session.name,
            "records": session.records,
            "chunks": session.chunks,
            "counts": {
                cls.value: session.counts.get(cls, 0)
                for cls in CLASS_ORDER
            },
            "verdict_digest": session.digest.hexdigest(),
            "max_queue_depth": session.max_queue_depth,
            "queue_chunks": self.config.queue_chunks,
            "wall_s": round(wall_s, 6),
            "packets_per_s": round(session.records / wall_s, 1),
        }

    async def _classify(self, session: Session, payload: bytes) -> dict:
        """One chunk through the right lane: pool worker or thread."""
        if self._pool is not None:
            handle = export_block(
                bytes(payload), via=self.config.transport
            )
            try:
                return await self._pool.run(
                    _classify_chunk_remote,
                    handle,
                    spec_to_dict(session.spec),
                    session.packets_sent,
                )
            except Exception:
                handle.release()
                raise
        if session.matcher is None:
            spec_dict = spec_to_dict(session.spec)
            spec_key = (
                tuple(sorted(spec_dict.items())), session.packets_sent
            )
            session.matcher = _matcher_for(
                spec_key, spec_dict, session.packets_sent
            )
        assert self._inline is not None
        return await asyncio.get_running_loop().run_in_executor(
            self._inline, _classify_chunk_inline, payload, session.matcher
        )

    async def _send_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        try:
            protocol.write_frame(
                writer,
                FrameType.ERROR,
                protocol.encode_json({"error": message}),
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def run_server(config: ServeConfig) -> None:
    """Start, print the address, and serve until cancelled (the CLI
    entry; SIGINT drains gracefully)."""
    server = TraceAnalysisServer(config)
    await server.start()
    address = server.address
    if isinstance(address, str):
        print(f"serving on unix:{address} (jobs={config.jobs})")
    else:
        print(
            f"serving on {address[0]}:{address[1]} (jobs={config.jobs})"
        )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
