"""Streaming trace-analysis service.

Turns the batch analysis pipeline into long-running infrastructure: a
:mod:`asyncio` ingest server (:mod:`repro.serve.server`) accepts trace
streams from many concurrent client sessions over a framed,
length-prefixed wire protocol (:mod:`repro.serve.protocol`), classifies
packets *incrementally* as frames arrive through
:class:`repro.analysis.classify.IncrementalClassifier`, and shards
per-chunk classification across a persistent worker pool
(:class:`repro.parallel.PersistentPool`) using the shared-memory
:class:`~repro.parallel.TraceHandle` transport.  Ingest is
flow-controlled end to end: bounded per-session queues backpressure the
socket, and a credit window advertised at handshake bounds the client's
in-flight chunks — a slow consumer never costs unbounded memory.

A load-generator client (:mod:`repro.serve.loadgen`) replays stored
``.wlt2`` traces over N concurrent sessions for benchmarking; both ends
are wired into the CLI (``python -m repro serve`` / ``loadgen``).  See
docs/SERVING.md for the protocol, backpressure semantics, and the
session telemetry schema.
"""

from repro.serve.protocol import (
    FrameType,
    ProtocolError,
    decode_chunk,
    encode_chunk,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, TraceAnalysisServer

__all__ = [
    "FrameType",
    "ProtocolError",
    "ServeConfig",
    "TraceAnalysisServer",
    "decode_chunk",
    "encode_chunk",
    "read_frame",
    "write_frame",
]
