"""Streaming trace-analysis service.

Turns the batch analysis pipeline into long-running infrastructure: a
:mod:`asyncio` ingest server (:mod:`repro.serve.server`) accepts trace
streams from many concurrent client sessions over a framed,
length-prefixed wire protocol (:mod:`repro.serve.protocol`), classifies
packets *incrementally* as frames arrive through
:class:`repro.analysis.classify.IncrementalClassifier`, and shards
per-chunk classification across a persistent worker pool
(:class:`repro.parallel.PersistentPool`) using the shared-memory
:class:`~repro.parallel.TraceHandle` transport.  Ingest is
flow-controlled end to end: bounded per-session queues backpressure the
socket, and a credit window advertised at handshake bounds the client's
in-flight chunks — a slow consumer never costs unbounded memory.

A load-generator client (:mod:`repro.serve.loadgen`) replays stored
``.wlt2`` traces over N concurrent sessions for benchmarking; both ends
are wired into the CLI (``python -m repro serve`` / ``loadgen``).  See
docs/SERVING.md for the protocol, backpressure semantics, and the
session telemetry schema.
"""

import warnings

from repro.serve.protocol import (
    FrameReader,
    FrameType,
    ProtocolError,
    decode_chunk,
    encode_chunk,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, TraceAnalysisServer

_UVLOOP_WARNED = False


def install_uvloop(explicit: bool = False) -> bool:
    """Install uvloop as the asyncio event-loop policy, if available.

    uvloop is an optional dependency (the ``repro[serve]`` extra); when
    it is missing the stock asyncio loop works identically, just with
    more per-wakeup overhead.  Returns True when uvloop is active.
    ``explicit=True`` (the user passed ``--uvloop``) warns once when the
    import fails instead of silently running on asyncio.
    """
    global _UVLOOP_WARNED
    try:
        import uvloop
    except ImportError:
        if explicit and not _UVLOOP_WARNED:
            _UVLOOP_WARNED = True
            warnings.warn(
                "--uvloop requested but uvloop is not installed "
                "(pip install 'repro[serve]'); using the stock "
                "asyncio event loop",
                RuntimeWarning,
                stacklevel=2,
            )
        return False
    asyncio_module = __import__("asyncio")
    asyncio_module.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


__all__ = [
    "FrameReader",
    "FrameType",
    "ProtocolError",
    "ServeConfig",
    "TraceAnalysisServer",
    "decode_chunk",
    "encode_chunk",
    "install_uvloop",
    "read_frame",
    "write_frame",
]
