"""The framed wire protocol of the streaming trace-analysis service.

Every message is one length-prefixed frame::

    [0:4]  u32 big-endian — length of everything after these 4 bytes
    [4:5]  u8 frame type  (:class:`FrameType`)
    [5:..] payload        (length - 1 bytes)

Control payloads (handshake, acks, summaries) are UTF-8 JSON.  Data
payloads (:attr:`FrameType.CHUNK`) are **format v2 columnar blocks**
(:mod:`repro.trace.columnar`) — the exact bytes a ``.wlt2`` file holds,
so the protocol reuses the trace store's one reader/writer pair, every
chunk is self-describing (spec, counts, column table), and the server
can ship a chunk to a pool worker through the shared-memory
:class:`~repro.parallel.TraceHandle` transport without re-encoding.

Session flow (client frames on the left, server on the right)::

    HELLO {session, name, spec, packets_sent, ...}
                                HELLO_OK {session, window_chunks, ...}
    CHUNK <v2 block>            ACK {records, chunks}      (per chunk)
    CHUNK <v2 block>            ...
    END {}                      SUMMARY {records, counts, ...}

Flow control: the server advertises ``window_chunks`` in HELLO_OK; a
well-behaved client keeps at most that many un-ACKed chunks in flight.
Misbehaving clients are still bounded — the server parks excess chunks
against a bounded per-session queue and simply stops reading the
socket while it is full, so TCP backpressure does the rest.
"""

from __future__ import annotations

import asyncio
import enum
import io
import json
from typing import Optional, Union

from repro.trace.columnar import (
    ColumnarTrace,
    read_columnar_buffer,
    spec_from_dict,
    spec_to_dict,
    write_columnar,
)

PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload; a peer announcing more is
#: corrupt or hostile, and the connection is dropped loudly rather
#: than buffered into oblivion.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN_BYTES = 4


class FrameType(enum.IntEnum):
    """Wire frame types (client 0x0x, server 0x8x)."""

    HELLO = 0x01
    CHUNK = 0x02
    END = 0x03
    CHUNK_REF = 0x04
    HELLO_OK = 0x81
    ACK = 0x82
    SUMMARY = 0x83
    ERROR = 0x84


class ProtocolError(ValueError):
    """A malformed, truncated, or out-of-sequence frame."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def frame(frame_type: FrameType, payload: bytes = b"") -> bytes:
    """One encoded frame: length prefix + type byte + payload."""
    if len(payload) + 1 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return (
        (len(payload) + 1).to_bytes(_LEN_BYTES, "big")
        + bytes([frame_type])
        + payload
    )


def write_frame(
    writer: asyncio.StreamWriter, frame_type: FrameType, payload: bytes = b""
) -> None:
    """Queue one frame on the stream (caller drains)."""
    writer.write(frame(frame_type, payload))


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[tuple[FrameType, bytes]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame — a peer dying mid-send — raises
    :class:`ProtocolError` so truncation is never mistaken for a clean
    goodbye (same stance the columnar store takes on missing trailers).
    """
    try:
        header = await reader.readexactly(_LEN_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            "connection closed mid-frame (inside the length prefix)"
        ) from exc
    length = int.from_bytes(header, "big")
    if length < 1 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"invalid frame length {length}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from exc
    try:
        frame_type = FrameType(body[0])
    except ValueError as exc:
        raise ProtocolError(f"unknown frame type 0x{body[0]:02x}") from exc
    return frame_type, body[1:]


class FrameReader:
    """Buffered frame decoder for high-rate ingest loops.

    :func:`read_frame` costs two ``readexactly`` awaits per frame —
    two event-loop round-trips and two bytes-object materializations
    even when the kernel already has dozens of frames queued.  The
    reader instead pulls large blocks (``read_bytes`` at a time) into
    one reusable ``bytearray`` and carves frames out of it, so a burst
    of buffered chunks costs one syscall and zero per-frame copies.

    The payload comes back as a :class:`memoryview` into the internal
    buffer, valid **only until the next** :meth:`read_frame` call —
    the next call releases it and may compact or refill the buffer
    underneath.  Callers copy out what they keep (into a ring slot, a
    bytes object, a decoded trace); the hot path copies exactly once,
    straight to its destination.

    EOF semantics match :func:`read_frame`: ``None`` at a clean frame
    boundary, :class:`ProtocolError` mid-frame.
    """

    _COMPACT_BYTES = 1 << 16

    def __init__(
        self, reader: asyncio.StreamReader, read_bytes: int = 1 << 20
    ) -> None:
        self._reader = reader
        self._read_bytes = read_bytes
        self._buf = bytearray()
        self._pos = 0
        self._view: Optional[memoryview] = None

    async def _fill(self, total: int) -> bool:
        """Grow the buffer to ``total`` unconsumed bytes; False on EOF."""
        target = self._pos + total
        while len(self._buf) < target:
            data = await self._reader.read(
                max(self._read_bytes, target - len(self._buf))
            )
            if not data:
                return False
            self._buf += data
        return True

    async def read_frame(self) -> Optional[tuple[FrameType, memoryview]]:
        """Next frame as ``(type, payload_view)``; ``None`` on clean EOF."""
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._pos:
            # Compact consumed bytes away — cheap when the buffer is
            # fully drained (the common case: truncate to empty), lazy
            # otherwise so back-to-back small frames don't memmove the
            # tail every call.
            if self._pos == len(self._buf):
                del self._buf[:]
                self._pos = 0
            elif self._pos >= self._COMPACT_BYTES:
                del self._buf[: self._pos]
                self._pos = 0
        if not await self._fill(_LEN_BYTES):
            if len(self._buf) - self._pos:
                raise ProtocolError(
                    "connection closed mid-frame (inside the length prefix)"
                )
            return None
        length = int.from_bytes(
            self._buf[self._pos : self._pos + _LEN_BYTES], "big"
        )
        if length < 1 or length > MAX_FRAME_BYTES:
            raise ProtocolError(f"invalid frame length {length}")
        if not await self._fill(_LEN_BYTES + length):
            raise ProtocolError(
                f"connection closed mid-frame "
                f"({len(self._buf) - self._pos - _LEN_BYTES} of "
                f"{length} bytes)"
            )
        start = self._pos + _LEN_BYTES
        try:
            frame_type = FrameType(self._buf[start])
        except ValueError as exc:
            raise ProtocolError(
                f"unknown frame type 0x{self._buf[start]:02x}"
            ) from exc
        self._pos = start + length
        self._view = memoryview(self._buf)[start + 1 : self._pos]
        return frame_type, self._view


# ----------------------------------------------------------------------
# Control payloads
# ----------------------------------------------------------------------
def encode_json(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed control payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("control payload must be a JSON object")
    return obj


def hello_payload(
    session: str,
    name: str,
    spec,
    packets_sent: int,
    first_sequence: int = 0,
    total_records: Optional[int] = None,
    shm_ring: bool = False,
    chunk_bytes: Optional[int] = None,
) -> bytes:
    """The handshake: everything the matcher needs before frame one.

    ``shm_ring=True`` asks the server to grant direct access to the
    session's shared-memory slot ring (same-host clients only): the
    grant comes back in HELLO_OK as ``{"ring": {name, slots,
    slot_bytes}}``, after which the client writes chunk payloads into
    slots itself and sends tiny :attr:`FrameType.CHUNK_REF` frames in
    place of full CHUNK payloads — the socket stops carrying frame
    bytes entirely.  ``chunk_bytes`` (the largest payload the client
    will send) lets the server size the slots up front.
    """
    doc = {
        "version": PROTOCOL_VERSION,
        "session": session,
        "name": name,
        "spec": spec_to_dict(spec),
        "packets_sent": packets_sent,
        "first_sequence": first_sequence,
    }
    if total_records is not None:
        doc["total_records"] = total_records
    if shm_ring:
        doc["shm_ring"] = True
    if chunk_bytes is not None:
        doc["chunk_bytes"] = int(chunk_bytes)
    return encode_json(doc)


def parse_hello(payload: bytes) -> dict:
    doc = decode_json(payload)
    if doc.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {doc.get('version')} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    for key in ("session", "name", "spec", "packets_sent"):
        if key not in doc:
            raise ProtocolError(f"HELLO missing {key!r}")
    try:
        doc["spec"] = spec_from_dict(doc["spec"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"HELLO carries a malformed spec: {exc}") from exc
    return doc


def chunk_ref_payload(slot: int, nbytes: int) -> bytes:
    """A CHUNK_REF frame body: the chunk is already in ring slot
    ``slot`` (first ``nbytes`` bytes), written there by the client."""
    return encode_json({"slot": int(slot), "nbytes": int(nbytes)})


def parse_chunk_ref(payload: Union[bytes, memoryview]) -> tuple[int, int]:
    doc = decode_json(bytes(payload))
    try:
        slot = int(doc["slot"])
        nbytes = int(doc["nbytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed CHUNK_REF: {exc}") from exc
    if slot < 0 or nbytes < 1:
        raise ProtocolError(
            f"CHUNK_REF out of range (slot={slot}, nbytes={nbytes})"
        )
    return slot, nbytes


# ----------------------------------------------------------------------
# Data payloads
# ----------------------------------------------------------------------
def encode_chunk(
    trace: ColumnarTrace, start: int = 0, stop: Optional[int] = None
) -> bytes:
    """Rows ``[start, stop)`` of ``trace`` as one CHUNK payload.

    The payload is a complete v2 columnar block (magic, payload,
    columns, footer, trailer) of just those rows — self-describing and
    truncation-detectable on its own.
    """
    if stop is None:
        stop = trace.packets_received
    buffer = io.BytesIO()
    write_columnar(trace.slice(start, stop), buffer)
    return buffer.getvalue()


def decode_chunk(
    payload: Union[bytes, memoryview], origin: str = "<chunk>"
) -> ColumnarTrace:
    """A CHUNK payload back as a zero-copy columnar trace.

    Columns are views into ``payload``; the trace pins the buffer as
    its backing so the caller may drop their reference.
    """
    return read_columnar_buffer(payload, origin=origin, backing=payload)
