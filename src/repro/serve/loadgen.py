"""Load generator: replay stored traces over N concurrent sessions.

The client half of :mod:`repro.serve` — opens ``sessions`` concurrent
connections, streams the same trace down each as framed v2 chunks, and
respects the credit window the server advertises at handshake (at most
``window_chunks`` un-ACKed chunks in flight per session).  Chunk
payloads are encoded once and shared across sessions, so the offered
load measures the *server's* ingest path, not client-side encoding.

Two data paths, negotiated per session:

* **Shared-memory ring** (same host): the HELLO requests ``shm_ring``;
  when the server grants one, the client attaches the session's slot
  ring (:class:`repro.parallel.RingClient`), writes each chunk payload
  straight into a free slot, and sends a tiny CHUNK_REF frame — the
  socket never carries frame bytes.  ACKs return the freed slots.
* **Socket framing** (remote, or no grant): full CHUNK payload frames,
  exactly the original protocol.

For benchmarking, ``processes > 0`` forks the load into separate
client processes (sessions split round-robin), so a single asyncio
loop's send path can never be the bottleneck being measured; each
worker reports its own send-side wall clock.

Programmatic use::

    report = await run_loadgen(("127.0.0.1", port), trace,
                               sessions=32, chunk_records=512)
    print(report.packets_per_s, report.send_packets_per_s)

or from the CLI: ``python -m repro loadgen --connect HOST:PORT
--trace run.wlt2 --sessions 32 --processes 4``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.parallel.handoff import RingClient
from repro.serve import protocol
from repro.serve.protocol import FrameType, ProtocolError
from repro.trace.columnar import ColumnarTrace
from repro.trace.persist import load_trace

Address = Union[str, tuple[str, int]]


@dataclass
class SessionReport:
    """One session's view of its own run, plus the server's SUMMARY."""

    session: str
    records: int
    chunks: int
    wall_s: float
    summary: dict
    send_wall_s: float = 0.0  # first CHUNK queued -> END drained
    ring_used: bool = False  # chunks travelled as CHUNK_REF slots


@dataclass
class LoadgenReport:
    """Aggregate results across all sessions of one loadgen run."""

    sessions: list[SessionReport] = field(default_factory=list)
    wall_s: float = 0.0
    send_wall_s: float = 0.0  # client-side send phase (max over lanes)
    # Measured-portion endpoints on the shared CLOCK_MONOTONIC timeline
    # (comparable across processes on Linux).  Multi-process merges use
    # max(end) − min(start) — the true aggregate span — instead of the
    # optimistic max-of-worker-walls, which overstates the rate when
    # worker runs are staggered.
    span_start: float = 0.0
    span_end: float = 0.0

    @property
    def records(self) -> int:
        return sum(s.records for s in self.sessions)

    @property
    def packets_per_s(self) -> float:
        return self.records / max(self.wall_s, 1e-9)

    @property
    def send_packets_per_s(self) -> float:
        """Client-side offered rate: records over the send-phase wall.

        When this sits well above :attr:`packets_per_s`, the server is
        the bottleneck being measured; when the two converge, scale the
        client out (more ``processes``) before trusting the number.
        """
        return self.records / max(self.send_wall_s, 1e-9)

    @property
    def max_queue_depth(self) -> int:
        return max(
            (s.summary.get("max_queue_depth", 0) for s in self.sessions),
            default=0,
        )

    def merged_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.sessions:
            for key, value in report.summary.get("counts", {}).items():
                counts[key] = counts.get(key, 0) + value
        return counts


def chunk_payloads(
    trace: ColumnarTrace, chunk_records: int
) -> list[bytes]:
    """The trace pre-sliced into CHUNK payloads (shared by sessions)."""
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    total = trace.packets_received
    if total == 0:
        # A zero-record trace still makes one (empty) chunk so the
        # session exercises the full handshake/ACK/summary path.
        return [protocol.encode_chunk(trace, 0, 0)]
    return [
        protocol.encode_chunk(trace, start, min(start + chunk_records, total))
        for start in range(0, total, chunk_records)
    ]


async def _open_connection(connect: Address):
    if isinstance(connect, str):
        return await asyncio.open_unix_connection(connect)
    host, port = connect
    return await asyncio.open_connection(host, port)


def _attach_ring(grant: Optional[dict]) -> Optional[RingClient]:
    """Attach the granted slot ring; None when absent or unreachable
    (a grant from a server on another host names a segment this
    machine does not have — fall back to socket framing)."""
    if not grant:
        return None
    try:
        return RingClient(
            str(grant["name"]),
            int(grant["slots"]),
            int(grant["slot_bytes"]),
        )
    except (KeyError, TypeError, ValueError, FileNotFoundError, OSError):
        return None


async def run_session(
    connect: Address,
    payloads: Sequence[bytes],
    spec,
    packets_sent: int,
    *,
    session_id: Optional[str] = None,
    name: str = "loadgen",
    total_records: Optional[int] = None,
    use_ring: bool = True,
) -> SessionReport:
    """One full session: HELLO, windowed CHUNK stream, END, SUMMARY."""
    session_id = session_id or uuid.uuid4().hex[:12]
    reader, writer = await _open_connection(connect)
    frames = protocol.FrameReader(reader)
    started = time.perf_counter()
    ring: Optional[RingClient] = None
    try:
        protocol.write_frame(
            writer,
            FrameType.HELLO,
            protocol.hello_payload(
                session_id,
                name,
                spec,
                packets_sent,
                total_records=total_records,
                shm_ring=use_ring,
                chunk_bytes=(
                    max(len(p) for p in payloads) if payloads else None
                ),
            ),
        )
        await writer.drain()
        item = await frames.read_frame()
        if item is None:
            raise ProtocolError("server closed during handshake")
        frame_type, payload = item
        if frame_type is FrameType.ERROR:
            raise ProtocolError(
                protocol.decode_json(bytes(payload)).get("error", "rejected")
            )
        if frame_type is not FrameType.HELLO_OK:
            raise ProtocolError(f"expected HELLO_OK, got {frame_type.name}")
        hello_ok = protocol.decode_json(bytes(payload))
        window = int(hello_ok.get("window_chunks", 1))
        if use_ring:
            ring = _attach_ring(hello_ok.get("ring"))

        # The credit window: one permit per un-ACKed chunk.  The sender
        # blocks on acquire; the ACK reader releases.  The reader also
        # collects the final SUMMARY, so it runs for the whole session.
        credits = asyncio.Semaphore(max(window, 1))
        summary: dict = {}
        acks = 0

        async def read_acks() -> None:
            nonlocal summary, acks
            try:
                while True:
                    item = await frames.read_frame()
                    if item is None:
                        raise ProtocolError(
                            "server closed before sending SUMMARY"
                        )
                    frame_type, payload = item
                    if frame_type is FrameType.ACK:
                        acks += 1
                        if ring is not None:
                            released = protocol.decode_json(
                                bytes(payload)
                            ).get("released")
                            if released:
                                ring.reclaim(released)
                        credits.release()
                    elif frame_type is FrameType.SUMMARY:
                        summary = protocol.decode_json(bytes(payload))
                        return
                    elif frame_type is FrameType.ERROR:
                        raise ProtocolError(
                            protocol.decode_json(bytes(payload)).get(
                                "error", "?"
                            )
                        )
                    else:
                        raise ProtocolError(
                            f"unexpected {frame_type.name} from server"
                        )
            finally:
                # Once the reader exits no ACK will ever arrive again
                # (the server ERRORs a failed chunk instead of ACKing
                # it), so top the window back up: a sender parked in
                # ``credits.acquire()`` wakes, sees the task is done,
                # and surfaces the error instead of hanging forever.
                for _ in range(window):
                    credits.release()

        ack_task = asyncio.create_task(read_acks())
        send_started = time.perf_counter()
        try:
            for payload in payloads:
                await credits.acquire()
                if ack_task.done():
                    break  # surface the reader's error below
                placed = ring.write(payload) if ring is not None else None
                if placed is not None:
                    protocol.write_frame(
                        writer,
                        FrameType.CHUNK_REF,
                        protocol.chunk_ref_payload(*placed),
                    )
                else:
                    protocol.write_frame(writer, FrameType.CHUNK, payload)
                await writer.drain()
            protocol.write_frame(writer, FrameType.END)
            await writer.drain()
            send_wall_s = time.perf_counter() - send_started
            await ack_task
        except BaseException:
            ack_task.cancel()
            await asyncio.gather(ack_task, return_exceptions=True)
            raise
        return SessionReport(
            session=session_id,
            records=int(summary.get("records", 0)),
            chunks=int(summary.get("chunks", 0)),
            wall_s=time.perf_counter() - started,
            summary=summary,
            send_wall_s=send_wall_s,
            ring_used=ring is not None and ring.writes > 0,
        )
    finally:
        if ring is not None:
            ring.close()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def run_loadgen(
    connect: Address,
    trace: ColumnarTrace,
    *,
    sessions: int = 8,
    chunk_records: int = 2048,
    name: str = "loadgen",
    use_ring: bool = True,
    session_ids: Optional[Sequence[str]] = None,
    payloads: Optional[Sequence[bytes]] = None,
) -> LoadgenReport:
    """Replay ``trace`` over ``sessions`` concurrent sessions.

    ``payloads`` lets a caller that replays the same trace repeatedly
    (the serve-smoke benchmark) pre-encode the CHUNK payloads once and
    keep client-side encoding out of the measured window.
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if session_ids is not None and len(session_ids) != sessions:
        raise ValueError("session_ids must match sessions")
    if payloads is None:
        payloads = chunk_payloads(trace, chunk_records)
    started = time.perf_counter()
    reports = await asyncio.gather(*(
        run_session(
            connect,
            payloads,
            trace.spec,
            trace.packets_sent,
            session_id=(
                session_ids[index] if session_ids is not None
                else f"{name}-{index:04d}"
            ),
            name=name,
            total_records=trace.packets_received,
            use_ring=use_ring,
        )
        for index in range(sessions)
    ))
    return LoadgenReport(
        sessions=list(reports),
        wall_s=time.perf_counter() - started,
        send_wall_s=max((r.send_wall_s for r in reports), default=0.0),
    )


# Per-process cache for multi-process loadgen workers: (trace_path,
# chunk_records) -> (trace, encoded payloads).  Lives in the *worker*
# process's module globals, surviving across executor submissions.
_WORKER_PAYLOADS: dict = {}


def _loadgen_worker(
    connect: Address,
    trace_path: str,
    session_ids: Sequence[str],
    chunk_records: int,
    name: str,
    use_ring: bool,
    repeats: int = 1,
    warmup: int = 0,
) -> LoadgenReport:
    """One client process's share of a multi-process loadgen run.

    ``repeats`` re-runs the worker's sessions back to back (payloads
    encoded once, up front); walls accumulate across repeats so the
    merged rate covers a sustained stream, not one burst.  ``warmup``
    passes run first and are *not* measured: the first pass through a
    fresh server pays one page fault per 4 KiB of ring it touches (and
    builds each shard's template bank), which is server startup cost,
    not steady-state ingest cost.

    The loaded trace and its encoded payloads are cached per process:
    executor processes are reused across submissions, so a warm-wave
    pass followed by a measured pass pays the load/encode cost once.
    """
    key = (trace_path, chunk_records)
    cached = _WORKER_PAYLOADS.get(key)
    if cached is None:
        trace = _as_columnar(load_trace(trace_path))
        cached = (trace, chunk_payloads(trace, chunk_records))
        _WORKER_PAYLOADS.clear()  # one trace at a time; these are big
        _WORKER_PAYLOADS[key] = cached
    trace, payloads = cached

    async def drive() -> LoadgenReport:
        merged = LoadgenReport()
        for _ in range(max(0, warmup)):
            await run_loadgen(
                connect,
                trace,
                sessions=len(session_ids),
                chunk_records=chunk_records,
                name=f"{name}-warm",
                use_ring=use_ring,
                session_ids=[f"{sid}-warm" for sid in session_ids],
                payloads=payloads,
            )
        merged.span_start = time.monotonic()
        for _ in range(max(0, repeats)):
            report = await run_loadgen(
                connect,
                trace,
                sessions=len(session_ids),
                chunk_records=chunk_records,
                name=name,
                use_ring=use_ring,
                session_ids=list(session_ids),
                payloads=payloads,
            )
            merged.sessions.extend(report.sessions)
            merged.wall_s += report.wall_s
            merged.send_wall_s += report.send_wall_s
        merged.span_end = time.monotonic()
        return merged

    return asyncio.run(drive())


def run_loadgen_processes(
    connect: Address,
    trace_path: str,
    *,
    sessions: int = 8,
    processes: int = 2,
    chunk_records: int = 2048,
    name: str = "loadgen",
    use_ring: bool = True,
    repeats: int = 1,
    warmup: int = 0,
) -> LoadgenReport:
    """Drive the load from ``processes`` separate client processes.

    Sessions are split round-robin; each worker runs its share on its
    own asyncio loop and measures its own walls, so the server's
    recorded ingest rate is never silently capped by one client loop.
    The merged wall is the true aggregate span — ``max(end) −
    min(start)`` of the workers' measured portions on the shared
    monotonic clock — so staggered worker starts lower the rate rather
    than inflating it; process spawn, module import, trace loading and
    ``warmup`` passes all happen before the span opens, so the rate
    reflects the server's steady-state ingest path, not executor
    startup.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    from concurrent.futures import ProcessPoolExecutor, wait

    processes = min(processes, sessions)
    ids = [f"{name}-{index:04d}" for index in range(sessions)]
    shares = [ids[worker::processes] for worker in range(processes)]
    with ProcessPoolExecutor(max_workers=processes) as executor:
        if warmup > 0:
            # Warm wave first, as its own synchronized phase: every
            # worker process imports, loads the trace, encodes (and
            # caches) payloads, and pages the server's rings in.  Only
            # once ALL of that is done does the measured wave start, so
            # the workers' measured spans open within milliseconds of
            # each other instead of staggering behind the slowest
            # starter.
            wait(
                [
                    executor.submit(
                        _loadgen_worker,
                        connect,
                        trace_path,
                        share,
                        chunk_records,
                        name,
                        use_ring,
                        0,
                        warmup,
                    )
                    for share in shares
                ]
            )
        futures = [
            executor.submit(
                _loadgen_worker,
                connect,
                trace_path,
                share,
                chunk_records,
                name,
                use_ring,
                repeats,
                0,
            )
            for share in shares
        ]
        partials = [future.result() for future in futures]
    merged = LoadgenReport()
    for partial in partials:
        merged.sessions.extend(partial.sessions)
        merged.wall_s = max(merged.wall_s, partial.wall_s)
        merged.send_wall_s = max(merged.send_wall_s, partial.send_wall_s)
    if partials and all(p.span_end > p.span_start for p in partials):
        merged.span_start = min(p.span_start for p in partials)
        merged.span_end = max(p.span_end for p in partials)
        # True aggregate span across workers: staggered starts count
        # against the rate rather than silently inflating it.
        merged.wall_s = max(merged.wall_s, merged.span_end - merged.span_start)
    return merged


def _as_columnar(trace) -> ColumnarTrace:
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def parse_connect(value: str) -> Address:
    """``HOST:PORT`` or a unix socket path (contains ``/``)."""
    if "/" in value:
        return value
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT or a socket path, got {value!r}"
        )
    return host, int(port)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="replay a stored trace against a running "
        "trace-analysis server over N concurrent sessions",
    )
    parser.add_argument(
        "--connect",
        type=parse_connect,
        required=True,
        help="server address: HOST:PORT or a unix socket path",
    )
    parser.add_argument(
        "--trace",
        required=True,
        help="stored trace to replay (.wlt2 or v1 .json/.json.gz)",
    )
    parser.add_argument(
        "--sessions", type=int, default=8, help="concurrent sessions"
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=2048,
        help="records per CHUNK frame",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="client processes driving the load (sessions are split "
        "round-robin; >1 keeps one asyncio loop from capping the "
        "offered rate)",
    )
    parser.add_argument(
        "--no-ring",
        action="store_true",
        help="never request the shared-memory slot ring; stream full "
        "CHUNK payload frames even to a same-host server",
    )
    parser.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop for the client event loop (needs the "
        "repro[serve] extra; falls back to asyncio with a warning)",
    )
    args = parser.parse_args(argv)

    if args.uvloop:
        from repro.serve import install_uvloop

        install_uvloop(explicit=True)
    use_ring = not args.no_ring
    if args.processes > 1:
        report = run_loadgen_processes(
            args.connect,
            args.trace,
            sessions=args.sessions,
            processes=args.processes,
            chunk_records=args.chunk_records,
            use_ring=use_ring,
        )
    else:
        trace = _as_columnar(load_trace(args.trace))
        report = asyncio.run(
            run_loadgen(
                args.connect,
                trace,
                sessions=args.sessions,
                chunk_records=args.chunk_records,
                use_ring=use_ring,
            )
        )
    expected = (
        _as_columnar(load_trace(args.trace)).packets_received * args.sessions
    )
    ring_lanes = sum(1 for s in report.sessions if s.ring_used)
    print(
        f"{len(report.sessions)} sessions, {report.records} records "
        f"in {report.wall_s:.3f}s ({report.packets_per_s:,.0f} packets/s "
        f"ingested, {report.send_packets_per_s:,.0f} packets/s offered, "
        f"{ring_lanes} ring sessions, "
        f"max queue depth {report.max_queue_depth})"
    )
    for key, value in sorted(report.merged_counts().items()):
        if value:
            print(f"  {key}: {value}")
    if report.records != expected:
        print(
            f"error: ingested {report.records} records, "
            f"expected {expected}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
