"""Load generator: replay stored traces over N concurrent sessions.

The client half of :mod:`repro.serve` — opens ``sessions`` concurrent
connections, streams the same trace down each as framed v2 chunks, and
respects the credit window the server advertises at handshake (at most
``window_chunks`` un-ACKed chunks in flight per session).  Chunk
payloads are encoded once and shared across sessions, so the offered
load measures the *server's* ingest path, not client-side encoding.

Programmatic use::

    report = await run_loadgen(("127.0.0.1", port), trace,
                               sessions=32, chunk_records=512)
    print(report.packets_per_s)

or from the CLI: ``python -m repro loadgen --connect HOST:PORT
--trace run.wlt2 --sessions 32``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.serve import protocol
from repro.serve.protocol import FrameType, ProtocolError
from repro.trace.columnar import ColumnarTrace
from repro.trace.persist import load_trace

Address = Union[str, tuple[str, int]]


@dataclass
class SessionReport:
    """One session's view of its own run, plus the server's SUMMARY."""

    session: str
    records: int
    chunks: int
    wall_s: float
    summary: dict


@dataclass
class LoadgenReport:
    """Aggregate results across all sessions of one loadgen run."""

    sessions: list[SessionReport] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def records(self) -> int:
        return sum(s.records for s in self.sessions)

    @property
    def packets_per_s(self) -> float:
        return self.records / max(self.wall_s, 1e-9)

    @property
    def max_queue_depth(self) -> int:
        return max(
            (s.summary.get("max_queue_depth", 0) for s in self.sessions),
            default=0,
        )

    def merged_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.sessions:
            for key, value in report.summary.get("counts", {}).items():
                counts[key] = counts.get(key, 0) + value
        return counts


def chunk_payloads(
    trace: ColumnarTrace, chunk_records: int
) -> list[bytes]:
    """The trace pre-sliced into CHUNK payloads (shared by sessions)."""
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    total = trace.packets_received
    if total == 0:
        # A zero-record trace still makes one (empty) chunk so the
        # session exercises the full handshake/ACK/summary path.
        return [protocol.encode_chunk(trace, 0, 0)]
    return [
        protocol.encode_chunk(trace, start, min(start + chunk_records, total))
        for start in range(0, total, chunk_records)
    ]


async def _open_connection(connect: Address):
    if isinstance(connect, str):
        return await asyncio.open_unix_connection(connect)
    host, port = connect
    return await asyncio.open_connection(host, port)


async def run_session(
    connect: Address,
    payloads: Sequence[bytes],
    spec,
    packets_sent: int,
    *,
    session_id: Optional[str] = None,
    name: str = "loadgen",
    total_records: Optional[int] = None,
) -> SessionReport:
    """One full session: HELLO, windowed CHUNK stream, END, SUMMARY."""
    session_id = session_id or uuid.uuid4().hex[:12]
    reader, writer = await _open_connection(connect)
    started = time.perf_counter()
    try:
        protocol.write_frame(
            writer,
            FrameType.HELLO,
            protocol.hello_payload(
                session_id,
                name,
                spec,
                packets_sent,
                total_records=total_records,
            ),
        )
        await writer.drain()
        item = await protocol.read_frame(reader)
        if item is None:
            raise ProtocolError("server closed during handshake")
        frame_type, payload = item
        if frame_type is FrameType.ERROR:
            raise ProtocolError(
                protocol.decode_json(payload).get("error", "rejected")
            )
        if frame_type is not FrameType.HELLO_OK:
            raise ProtocolError(f"expected HELLO_OK, got {frame_type.name}")
        window = int(
            protocol.decode_json(payload).get("window_chunks", 1)
        )

        # The credit window: one permit per un-ACKed chunk.  The sender
        # blocks on acquire; the ACK reader releases.  The reader also
        # collects the final SUMMARY, so it runs for the whole session.
        credits = asyncio.Semaphore(max(window, 1))
        summary: dict = {}
        acks = 0

        async def read_acks() -> None:
            nonlocal summary, acks
            try:
                while True:
                    item = await protocol.read_frame(reader)
                    if item is None:
                        raise ProtocolError(
                            "server closed before sending SUMMARY"
                        )
                    frame_type, payload = item
                    if frame_type is FrameType.ACK:
                        acks += 1
                        credits.release()
                    elif frame_type is FrameType.SUMMARY:
                        summary = protocol.decode_json(payload)
                        return
                    elif frame_type is FrameType.ERROR:
                        raise ProtocolError(
                            protocol.decode_json(payload).get("error", "?")
                        )
                    else:
                        raise ProtocolError(
                            f"unexpected {frame_type.name} from server"
                        )
            finally:
                # Once the reader exits no ACK will ever arrive again
                # (the server ERRORs a failed chunk instead of ACKing
                # it), so top the window back up: a sender parked in
                # ``credits.acquire()`` wakes, sees the task is done,
                # and surfaces the error instead of hanging forever.
                for _ in range(window):
                    credits.release()

        ack_task = asyncio.create_task(read_acks())
        try:
            for payload in payloads:
                await credits.acquire()
                if ack_task.done():
                    break  # surface the reader's error below
                protocol.write_frame(writer, FrameType.CHUNK, payload)
                await writer.drain()
            protocol.write_frame(writer, FrameType.END)
            await writer.drain()
            await ack_task
        except BaseException:
            ack_task.cancel()
            await asyncio.gather(ack_task, return_exceptions=True)
            raise
        return SessionReport(
            session=session_id,
            records=int(summary.get("records", 0)),
            chunks=int(summary.get("chunks", 0)),
            wall_s=time.perf_counter() - started,
            summary=summary,
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def run_loadgen(
    connect: Address,
    trace: ColumnarTrace,
    *,
    sessions: int = 8,
    chunk_records: int = 2048,
    name: str = "loadgen",
) -> LoadgenReport:
    """Replay ``trace`` over ``sessions`` concurrent sessions."""
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    payloads = chunk_payloads(trace, chunk_records)
    started = time.perf_counter()
    reports = await asyncio.gather(*(
        run_session(
            connect,
            payloads,
            trace.spec,
            trace.packets_sent,
            session_id=f"{name}-{index:04d}",
            name=name,
            total_records=trace.packets_received,
        )
        for index in range(sessions)
    ))
    return LoadgenReport(
        sessions=list(reports), wall_s=time.perf_counter() - started
    )


def _as_columnar(trace) -> ColumnarTrace:
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def parse_connect(value: str) -> Address:
    """``HOST:PORT`` or a unix socket path (contains ``/``)."""
    if "/" in value:
        return value
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT or a socket path, got {value!r}"
        )
    return host, int(port)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="replay a stored trace against a running "
        "trace-analysis server over N concurrent sessions",
    )
    parser.add_argument(
        "--connect",
        type=parse_connect,
        required=True,
        help="server address: HOST:PORT or a unix socket path",
    )
    parser.add_argument(
        "--trace",
        required=True,
        help="stored trace to replay (.wlt2 or v1 .json/.json.gz)",
    )
    parser.add_argument(
        "--sessions", type=int, default=8, help="concurrent sessions"
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=2048,
        help="records per CHUNK frame",
    )
    args = parser.parse_args(argv)

    trace = _as_columnar(load_trace(args.trace))
    report = asyncio.run(
        run_loadgen(
            args.connect,
            trace,
            sessions=args.sessions,
            chunk_records=args.chunk_records,
        )
    )
    expected = trace.packets_received * args.sessions
    print(
        f"{len(report.sessions)} sessions, {report.records} records "
        f"in {report.wall_s:.3f}s ({report.packets_per_s:,.0f} packets/s, "
        f"max queue depth {report.max_queue_depth})"
    )
    for key, value in sorted(report.merged_counts().items()):
        if value:
            print(f"  {key}: {value}")
    if report.records != expected:
        print(
            f"error: ingested {report.records} records, "
            f"expected {expected}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
