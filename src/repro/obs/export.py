"""Trace exporters: Perfetto/Chrome JSON and the terminal waterfall.

``python -m repro timeline run.jsonl`` renders the span tree a traced
run recorded (see :mod:`repro.obs.spans`) as an indented waterfall with
per-span wall/CPU time; ``--export trace.json`` instead writes
Chrome trace-event JSON that https://ui.perfetto.dev (or
``chrome://tracing``) opens directly; ``--follow`` tails the run's
heartbeat records live while it is still executing.

Records are gathered from the telemetry file *plus* its per-worker
shard family, so a ``--jobs N`` run renders as one stitched tree —
worker task spans appear under the parent's ``parallel.run_tasks``
span because ids were propagated across the pool boundary, not
reconstructed here.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.obs.events import PathLike, iter_telemetry
from repro.obs.spans import span_tree


def iter_run_records(path: PathLike) -> Iterator[dict]:
    """Stream every record of a run: the parent file, then each shard."""
    from repro.parallel.shards import find_shards

    yield from iter_telemetry(path)
    for shard in find_shards(path):
        yield from iter_telemetry(shard)


def load_run_records(path: PathLike) -> list[dict]:
    """All records of a run (parent + shards), materialized."""
    return list(iter_run_records(path))


# ----------------------------------------------------------------------
# Chrome / Perfetto trace-event JSON
# ----------------------------------------------------------------------
def to_chrome_trace(records: list[dict]) -> dict:
    """Convert telemetry records to Chrome trace-event JSON.

    Span records become ``ph: "X"`` complete events (timestamps in
    microseconds, normalized to the earliest span so the trace starts
    at t=0); heartbeat and resource records become ``ph: "C"`` counter
    tracks (packets/s, RSS); each pid gets a ``process_name`` metadata
    event.  The output dict serializes to a file Perfetto and
    ``chrome://tracing`` open as-is.
    """
    spans = [r for r in records if r.get("type") == "span"]
    starts = [r.get("start_unix", 0.0) for r in spans]
    epoch = min(starts) if starts else 0.0
    events: list[dict] = []
    pids = set()

    def _ts(unix: float) -> float:
        return max(0.0, (unix - epoch) * 1e6)

    for record in spans:
        pid = record.get("pid", 0)
        pids.add(pid)
        args = dict(record.get("attrs", {}))
        args["span"] = record.get("span")
        if record.get("parent"):
            args["parent"] = record["parent"]
        args["cpu_s"] = record.get("cpu_s", 0.0)
        args["rss_delta_kb"] = record.get("rss_delta_kb", 0)
        if record.get("status") and record["status"] != "ok":
            args["status"] = record["status"]
        events.append({
            "name": record.get("name", "?"),
            "cat": "span",
            "ph": "X",
            "ts": _ts(record.get("start_unix", epoch)),
            "dur": record.get("wall_s", 0.0) * 1e6,
            "pid": pid,
            "tid": pid,
            "args": args,
        })
    for record in records:
        kind = record.get("type")
        if kind == "heartbeat":
            pid = next(iter(pids), 0)
            events.append({
                "name": "progress",
                "cat": "heartbeat",
                "ph": "C",
                "ts": _ts(record.get("unix", epoch)),
                "pid": pid,
                "tid": pid,
                "args": {
                    "packets_per_s": record.get("packets_per_s", 0.0),
                    "tasks_done": record.get("done", 0),
                },
            })
        elif kind == "resource":
            pid = next(iter(pids), 0)
            events.append({
                "name": "rss",
                "cat": "resource",
                "ph": "C",
                "ts": _ts(record.get("unix", epoch)),
                "pid": pid,
                "tid": pid,
                "args": {"rss_kb": record.get("rss_kb", 0)},
            })
    for pid in sorted(pids):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {"name": f"repro pid {pid}"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: list[dict], path: PathLike) -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(to_chrome_trace(records), stream)
        stream.write("\n")


# ----------------------------------------------------------------------
# Terminal waterfall
# ----------------------------------------------------------------------
def render_waterfall(records: list[dict], width: int = 40) -> str:
    """An indented span-tree waterfall for the terminal.

    Each line shows the span name, wall/CPU seconds, and a bar whose
    offset and length place the span on the run's time axis — the
    text-mode rendering of what the Perfetto export shows graphically.
    """
    roots, children = span_tree(records)
    if not roots:
        return "(no spans recorded — run with --telemetry to capture them)"
    t0 = min(r.get("start_unix", 0.0) for r in roots)
    t1 = max(
        r.get("start_unix", 0.0) + r.get("wall_s", 0.0)
        for r in records
        if r.get("type") == "span"
    )
    total = max(t1 - t0, 1e-9)
    lines: list[str] = []

    def _bar(record: dict) -> str:
        offset = (record.get("start_unix", t0) - t0) / total
        length = record.get("wall_s", 0.0) / total
        left = int(round(offset * width))
        size = max(1, int(round(length * width)))
        size = min(size, width - min(left, width - 1))
        return " " * min(left, width - 1) + "#" * size

    def _walk(record: dict, depth: int) -> None:
        name = record.get("name", "?")
        flag = "" if record.get("status", "ok") == "ok" else " [ERROR]"
        lines.append(
            f"{'  ' * depth}{name:<{max(1, 36 - 2 * depth)}} "
            f"{record.get('wall_s', 0.0):8.3f}s "
            f"cpu {record.get('cpu_s', 0.0):7.3f}s "
            f"|{_bar(record)}|{flag}"
        )
        for child in children.get(record["span"], ()):
            _walk(child, depth + 1)

    header = (
        f"trace {roots[0].get('trace', '?')} — "
        f"{sum(1 for r in records if r.get('type') == 'span')} spans, "
        f"{total:.3f}s"
    )
    lines.insert(0, header)
    for root in roots:
        _walk(root, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live heartbeat tail (--follow)
# ----------------------------------------------------------------------
def follow_heartbeats(
    path: PathLike,
    poll_s: float = 0.5,
    idle_timeout_s: Optional[float] = None,
    _print=print,
) -> int:
    """Tail a running telemetry file, printing heartbeat records live.

    Re-reads the (append-only) file each poll and prints every
    heartbeat not yet seen; returns once the final ``metrics`` record
    lands (the session closed) or after ``idle_timeout_s`` with no new
    records.  Gzipped telemetry cannot be tailed mid-run (the trailer
    is written on close), so ``--follow`` expects an uncompressed file.
    """
    if Path(path).suffix == ".gz":
        raise ValueError("--follow cannot tail gzipped telemetry")
    seen = 0
    idle_since = time.monotonic()
    while True:
        count = 0
        finished = False
        for record in iter_telemetry(path):
            count += 1
            if count > seen:
                if record.get("type") == "heartbeat":
                    _print(
                        f"[{record.get('label', 'run')}] "
                        f"{record.get('done', 0)}/{record.get('total', 0)} "
                        f"tasks, {record.get('packets_per_s', 0.0):,.0f} "
                        f"pkt/s, rss {record.get('rss_kb', 0) / 1024:.0f} MB"
                    )
                idle_since = time.monotonic()
            if record.get("type") == "metrics":
                finished = True
        seen = max(seen, count)
        if finished:
            return 0
        if (
            idle_timeout_s is not None
            and time.monotonic() - idle_since > idle_timeout_s
        ):
            return 0
        time.sleep(poll_s)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(
    path: str,
    export: Optional[str] = None,
    follow: bool = False,
    idle_timeout_s: Optional[float] = None,
) -> int:
    """Entry point for ``python -m repro timeline``."""
    if follow:
        return follow_heartbeats(path, idle_timeout_s=idle_timeout_s)
    records = load_run_records(path)
    if export is not None:
        write_chrome_trace(records, export)
        spans = sum(1 for r in records if r.get("type") == "span")
        print(
            f"wrote {export} ({spans} spans) — "
            "open at https://ui.perfetto.dev"
        )
        return 0
    try:
        print(render_waterfall(records))
    except BrokenPipeError:
        pass  # downstream pager closed the pipe; not an error
    return 0
