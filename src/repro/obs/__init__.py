"""Instrumentation bus: metrics, run telemetry, and profiling hooks.

The paper's contribution rests on *instrumented* measurement — a driver
modified to log every received bit plus per-packet status.  This package
gives the reproduction the same property about itself: a metrics
registry with hierarchical names (``phy.bits_flipped``,
``link.drops{reason=...}``), structured JSONL run telemetry, per-run
manifests, and profiling timers around the hot paths — all near-zero
cost when disabled (the default).

Quick use::

    from repro import obs

    with obs.session(telemetry_path="run.jsonl") as state:
        ...  # run experiments; layers record into state.metrics
        print(obs.render_snapshot(state.metrics.snapshot()))

See docs/OBSERVABILITY.md for the metric namespace and file schema.
"""

from repro.obs.events import (
    EventTracer,
    JsonlTelemetrySink,
    TELEMETRY_FORMAT,
    TELEMETRY_KIND,
    iter_telemetry,
    read_telemetry,
    read_telemetry_header,
)
from repro.obs.manifest import RunManifest, build_manifest, git_revision
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NULL_SPAN,
    Timer,
    render_snapshot,
    scoped_name,
)
from repro.obs.resources import ResourceMonitor, ResourceSample, sample
from repro.obs.runtime import (
    STATE,
    ObsState,
    configure,
    ensure_metrics,
    metrics,
    reset,
    session,
    span,
    trace_span,
)
from repro.obs.spans import (
    SpanContext,
    SpanRecorder,
    derive_span_id,
    derive_trace_id,
    span_structure,
    span_tree,
)
from repro.obs.stats import TelemetrySummary, render_summary, summarize_telemetry

__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "JsonlTelemetrySink",
    "Metrics",
    "NULL_SPAN",
    "ObsState",
    "ResourceMonitor",
    "ResourceSample",
    "RunManifest",
    "STATE",
    "SpanContext",
    "SpanRecorder",
    "TELEMETRY_FORMAT",
    "TELEMETRY_KIND",
    "TelemetrySummary",
    "Timer",
    "build_manifest",
    "configure",
    "derive_span_id",
    "derive_trace_id",
    "ensure_metrics",
    "git_revision",
    "iter_telemetry",
    "metrics",
    "read_telemetry",
    "read_telemetry_header",
    "render_snapshot",
    "render_summary",
    "reset",
    "sample",
    "scoped_name",
    "session",
    "span",
    "span_structure",
    "span_tree",
    "summarize_telemetry",
    "trace_span",
]
