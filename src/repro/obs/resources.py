"""Lightweight process-resource sampling (no external dependencies).

One cheap call (:func:`sample`) reads the process's current and peak
resident set size plus cumulative CPU time; spans sample it at their
boundaries, the parallel runner stamps per-task CPU/peak-RSS into run
manifests, and heartbeat records carry the live RSS.

On Linux the RSS figures come from ``/proc/self/status`` (``VmRSS`` /
``VmHWM``); elsewhere the fallback is ``resource.getrusage`` (peak
only, with the platform's unit quirk handled: Linux reports KiB, macOS
bytes).  A failed read degrades to zeros rather than raising — resource
accounting is observability, never a reason to fail a run.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from time import process_time

_PROC_STATUS = "/proc/self/status"


def _proc_status_kb() -> tuple[int, int]:
    """(VmRSS, VmHWM) in KiB from /proc, or (0, 0) when unreadable."""
    rss = peak = 0
    try:
        with open(_PROC_STATUS, "rb") as stream:
            for line in stream:
                if line.startswith(b"VmRSS:"):
                    rss = int(line.split()[1])
                elif line.startswith(b"VmHWM:"):
                    peak = int(line.split()[1])
                if rss and peak:
                    break
    except (OSError, ValueError, IndexError):
        return 0, 0
    return rss, peak


def _rusage_peak_kb() -> int:
    """Peak RSS via getrusage, normalized to KiB (0 when unavailable)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError, ValueError):
        return 0
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        return int(peak // 1024)
    return int(peak)


def rss_kb() -> int:
    """Current resident set size in KiB (0 when unknowable)."""
    rss, _ = _proc_status_kb()
    return rss


def peak_rss_kb() -> int:
    """Peak (high-water) resident set size in KiB."""
    _, peak = _proc_status_kb()
    return peak or _rusage_peak_kb()


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time reading of the process's resource state."""

    unix_time: float
    cpu_s: float  # cumulative process CPU time (user + system)
    rss_kb: int
    peak_rss_kb: int

    def to_record(self) -> dict:
        """The ``type: resource`` telemetry record."""
        return {
            "type": "resource",
            "unix": self.unix_time,
            "cpu_s": self.cpu_s,
            "rss_kb": self.rss_kb,
            "peak_rss_kb": self.peak_rss_kb,
        }


def sample() -> ResourceSample:
    """Read the current resource state (one /proc read, ~tens of µs)."""
    rss, peak = _proc_status_kb()
    if not peak:
        peak = _rusage_peak_kb()
    return ResourceSample(
        unix_time=time.time(),
        cpu_s=process_time(),
        rss_kb=rss,
        peak_rss_kb=peak,
    )


class ResourceMonitor:
    """Delta-tracking sampler for task/experiment boundaries.

    ``start()`` pins a baseline; ``finish()`` returns ``(cpu_s delta,
    peak RSS)`` — the two figures run manifests report per experiment.
    ``emit(sink)`` additionally writes the raw sample as a telemetry
    record, rate-limited to one record per ``min_interval_s``.
    """

    def __init__(self, min_interval_s: float = 0.5) -> None:
        self.min_interval_s = min_interval_s
        self._baseline: ResourceSample = sample()
        self._last_emit_unix = 0.0

    def start(self) -> ResourceSample:
        self._baseline = sample()
        return self._baseline

    def finish(self) -> tuple[float, int]:
        """(CPU seconds since start(), peak RSS in KiB)."""
        current = sample()
        return current.cpu_s - self._baseline.cpu_s, current.peak_rss_kb

    def emit(self, sink) -> bool:
        """Write one resource record if the rate limit allows; returns
        whether a record was written."""
        now = time.time()
        if now - self._last_emit_unix < self.min_interval_s:
            return False
        self._last_emit_unix = now
        sink.emit(sample().to_record())
        return True
