"""Benchmark history and the regression gate.

The smoke benchmarks (``benchmarks/bench_internal_performance.py``)
merge their measurements into ``BENCH_internal.json`` — a snapshot of
*this* working tree's performance.  This module gives those snapshots a
memory and a gate:

* :func:`append_history` stamps the current snapshot with the git
  revision and appends it to ``benchmarks/history.jsonl`` — one JSON
  line per benchmarked revision, so performance over time is a
  greppable series (``python -m repro bench append``).
* :func:`diff_stages` compares two snapshots' ``*_wall_s`` timings and
  ``*_per_s`` throughputs per stage with a tolerance band;
  :func:`main_diff` (``python -m repro bench diff BASELINE CURRENT``)
  exits nonzero when any stage slowed beyond tolerance — the CI
  regression gate against the committed ``benchmarks/baseline.json``.

Two key families are gated, with opposite regression directions:
``*_wall_s`` keys are timings (regression = ratio *above* ``1 +
tolerance``) and ``*_per_s`` keys are throughputs (regression = ratio
*below* ``1 - tolerance``).  Gating both catches the case a wall-clock
ratio alone hides: a stage whose workload column changed between
snapshots, making its wall time incomparable but its throughput still
meaningful.  Speedup keys stay excluded (derived, ungated), and payload
keys like ``packets`` describe the workload, not the performance.  A
stage or key present on one side only is reported but never fails the
gate — adding a benchmark must not break CI retroactively.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.obs.manifest import git_revision

PathLike = Union[str, Path]

#: CI's tolerance band: a stage may slow by this fraction before the
#: gate fails.  Wide enough for shared-runner noise on sub-100ms
#: stages, tight enough to catch a real (algorithmic) regression.
DEFAULT_TOLERANCE = 0.25


def load_snapshot(path: PathLike) -> dict:
    """Read one ``BENCH_internal.json``-shaped snapshot (schema 1)."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict):
        raise ValueError(
            f"{path}: bench snapshot must be a JSON object, "
            f"got {type(doc).__name__}"
        )
    if doc.get("schema") != 1:
        raise ValueError(
            f"{path}: bench schema {doc.get('schema')} (this reader "
            "supports 1)"
        )
    return doc


def append_history(
    bench_path: PathLike,
    history_path: PathLike,
    git_rev: Optional[str] = None,
) -> dict:
    """Append the current snapshot to the history series.

    The appended line carries the snapshot's stages plus the git
    revision and a timestamp; returns the record written.
    """
    snapshot = load_snapshot(bench_path)
    record = {
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "unix": time.time(),
        "stages": snapshot.get("stages", {}),
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(record) + "\n")
    return record


def load_history(history_path: PathLike) -> list[dict]:
    """Every record of the history series, oldest first."""
    records = []
    with open(history_path, encoding="utf-8") as stream:
        for line in stream:
            if line.strip():
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimingDelta:
    """One ``stage.key`` measurement compared across two snapshots.

    The field names say ``_s`` for history's sake, but the values are
    whatever the key measures: seconds for ``*_wall_s`` keys,
    per-second rates for ``*_per_s`` keys — :attr:`kind` tells the
    gate which direction counts as a regression.
    """

    stage: str
    key: str
    baseline_s: float
    current_s: float

    @property
    def kind(self) -> str:
        """``"throughput"`` for ``*_per_s`` keys, else ``"wall"``."""
        return "throughput" if self.key.endswith("_per_s") else "wall"

    @property
    def ratio(self) -> float:
        """current / baseline (1.0 = unchanged)."""
        if self.baseline_s <= 0:
            return 1.0
        return self.current_s / self.baseline_s

    def regressed(self, tolerance: float) -> bool:
        """Worse than tolerance allows, in this key's bad direction:
        slower for wall timings, lower for throughputs."""
        if self.kind == "throughput":
            return self.ratio < 1.0 - tolerance
        return self.ratio > 1.0 + tolerance

    def improved(self, tolerance: float) -> bool:
        """Better than tolerance noise, in this key's good direction."""
        if self.kind == "throughput":
            return self.ratio > 1.0 + tolerance
        return self.ratio < 1.0 - tolerance


def _gated_keys(stage_payload: dict) -> dict[str, float]:
    return {
        key: value
        for key, value in stage_payload.items()
        if (key.endswith("_wall_s") or key.endswith("_per_s"))
        and isinstance(value, (int, float))
    }


def diff_stages(
    baseline: dict, current: dict
) -> tuple[list[TimingDelta], list[str]]:
    """Compare two snapshots' stages on their ``*_wall_s`` timings and
    ``*_per_s`` throughputs.

    Returns ``(deltas, uncompared)``: one :class:`TimingDelta` per
    gated key present on both sides, plus human-readable notes for
    stages or keys present on only one side (reported, never gating).
    """
    baseline_stages = baseline.get("stages", {})
    current_stages = current.get("stages", {})
    deltas: list[TimingDelta] = []
    uncompared: list[str] = []
    if not isinstance(baseline_stages, dict):
        uncompared.append("baseline 'stages' is not an object; skipped")
        baseline_stages = {}
    if not isinstance(current_stages, dict):
        uncompared.append("current 'stages' is not an object; skipped")
        current_stages = {}
    for stage in sorted(set(baseline_stages) | set(current_stages)):
        if stage not in current_stages:
            uncompared.append(f"stage {stage!r}: baseline only (not run)")
            continue
        if stage not in baseline_stages:
            uncompared.append(f"stage {stage!r}: new (no baseline)")
            continue
        # A hand-edited or truncated snapshot may hold a non-object
        # payload; a malformed stage must warn, not crash the gate.
        malformed = [
            side
            for side, stages in (
                ("baseline", baseline_stages),
                ("current", current_stages),
            )
            if not isinstance(stages[stage], dict)
        ]
        if malformed:
            uncompared.append(
                f"stage {stage!r}: malformed payload "
                f"({' and '.join(malformed)}); skipped"
            )
            continue
        base_walls = _gated_keys(baseline_stages[stage])
        cur_walls = _gated_keys(current_stages[stage])
        for key in sorted(set(base_walls) | set(cur_walls)):
            if key not in cur_walls:
                uncompared.append(f"{stage}.{key}: baseline only")
            elif key not in base_walls:
                uncompared.append(f"{stage}.{key}: new (no baseline)")
            else:
                deltas.append(
                    TimingDelta(stage, key, base_walls[key], cur_walls[key])
                )
    return deltas, uncompared


def render_diff(
    deltas: list[TimingDelta],
    uncompared: list[str],
    tolerance: float,
) -> str:
    """Human-readable diff table, regressions flagged."""
    lines = [
        f"{'stage.timing':<44} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7}"
    ]
    for delta in deltas:
        flag = ""
        if delta.regressed(tolerance):
            flag = f"  REGRESSION (> {tolerance:.0%} tolerance)"
        elif delta.improved(tolerance):
            flag = "  improved"
        if delta.kind == "throughput":
            base_txt = f"{delta.baseline_s:>8.0f}/s"
            cur_txt = f"{delta.current_s:>8.0f}/s"
        else:
            base_txt = f"{delta.baseline_s:>9.4f}s"
            cur_txt = f"{delta.current_s:>9.4f}s"
        lines.append(
            f"{delta.stage + '.' + delta.key:<44} "
            f"{base_txt} {cur_txt} "
            f"{delta.ratio:>6.2f}x{flag}"
        )
    for note in uncompared:
        lines.append(f"(uncompared) {note}")
    regressions = [d for d in deltas if d.regressed(tolerance)]
    lines.append(
        f"{len(deltas)} timings compared, {len(regressions)} regression"
        f"{'s' if len(regressions) != 1 else ''}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main_append(
    bench: str = "BENCH_internal.json",
    history: str = "benchmarks/history.jsonl",
) -> int:
    """``python -m repro bench append``: stamp + append the snapshot."""
    record = append_history(bench, history)
    print(
        f"appended {len(record['stages'])} stages at rev "
        f"{record['git_rev'] or 'unknown'} to {history}"
    )
    return 0


def main_diff(
    baseline: str,
    current: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> int:
    """``python -m repro bench diff``: compare, exit 1 on regression."""
    deltas, uncompared = diff_stages(
        load_snapshot(baseline), load_snapshot(current)
    )
    print(render_diff(deltas, uncompared, tolerance))
    if any(delta.regressed(tolerance) for delta in deltas):
        return 1
    return 0
