"""Per-run manifests: the run-level metadata the paper's methodology
kept (who measured, with what configuration, for how long) and that
trace-driven replay arguments depend on.

A manifest is built per experiment from a before/after pair of counter
snapshots, so concurrent-in-process experiments compose: each manifest
reports only the counter *deltas* its experiment produced.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.obs.metrics import Metrics

_RNG_PREFIX = "rng.calls{stream="


def git_revision() -> Optional[str]:
    """Short git revision of the working tree, or None outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


@dataclass
class RunManifest:
    """Run-level metadata for one experiment execution."""

    experiment: str
    seed: Optional[int]
    scale: Optional[float]
    git_rev: Optional[str]
    wall_clock_s: float
    events_fired: int
    packets_offered: int
    rng_streams: dict[str, int] = field(default_factory=dict)
    layer_counters: dict[str, int] = field(default_factory=dict)
    # Resource accounting (repro.obs.resources): CPU seconds consumed
    # by the run and the process's peak RSS when it finished.  None
    # when the run predates resource sampling or it was unavailable.
    cpu_s: Optional[float] = None
    peak_rss_kb: Optional[int] = None

    def to_record(self) -> dict:
        """The ``type: manifest`` telemetry record."""
        return {
            "type": "manifest",
            "experiment": self.experiment,
            "seed": self.seed,
            "scale": self.scale,
            "git_rev": self.git_rev,
            "wall_clock_s": self.wall_clock_s,
            "events_fired": self.events_fired,
            "packets_offered": self.packets_offered,
            "rng_streams": self.rng_streams,
            "layer_counters": self.layer_counters,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
        }


def counter_deltas(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    """Nonzero counter increases between two snapshots."""
    deltas: dict[str, int] = {}
    for key, value in after.items():
        delta = value - before.get(key, 0)
        if delta:
            deltas[key] = delta
    return deltas


def build_manifest(
    experiment: str,
    *,
    metrics: Metrics,
    counters_before: dict[str, int],
    wall_clock_s: float,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    git_rev: Optional[str] = None,
    cpu_s: Optional[float] = None,
    peak_rss_kb: Optional[int] = None,
) -> RunManifest:
    """Fold a before/after counter diff into a :class:`RunManifest`.

    RNG-stream call counts (``rng.calls{stream=...}``) are split out of
    the layer counters into their own mapping.  ``cpu_s`` /
    ``peak_rss_kb`` come from the caller's resource monitor when it ran
    one (the parallel runner and the CLI both do).
    """
    deltas = counter_deltas(counters_before, metrics.counters_snapshot())
    rng_streams: dict[str, int] = {}
    layer_counters: dict[str, int] = {}
    for key, delta in deltas.items():
        if key.startswith(_RNG_PREFIX) and key.endswith("}"):
            rng_streams[key[len(_RNG_PREFIX):-1]] = delta
        else:
            layer_counters[key] = delta
    return RunManifest(
        experiment=experiment,
        seed=seed,
        scale=scale,
        git_rev=git_rev,
        wall_clock_s=wall_clock_s,
        events_fired=layer_counters.get("sim.events_fired", 0),
        packets_offered=layer_counters.get("trace.packets_offered", 0),
        rng_streams=rng_streams,
        layer_counters=layer_counters,
        cpu_s=cpu_s,
        peak_rss_kb=peak_rss_kb,
    )
