"""The process-wide observability state and its lifecycle.

Instrumented modules consult one module-level :data:`STATE` object.  By
default it is *disabled*: ``STATE.enabled`` and ``STATE.profiling`` are
``False`` and ``STATE.metrics`` is a registry that hands out no-op
instruments.  Hot paths therefore pay at most one attribute load and a
branch per instrumentation point::

    from repro.obs import runtime as _obs
    ...
    state = _obs.STATE
    if state.enabled:
        state.metrics.counter("phy.missed").inc()

The CLI (``--telemetry`` / ``--metrics``) and tests turn instrumentation
on with :func:`configure` or the :func:`session` context manager, and
restore the disabled default with :func:`reset`.  The state object is
deliberately mutated in place (never replaced) so modules may cache a
reference to ``STATE`` itself — but must not cache its attributes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EventTracer, JsonlTelemetrySink
from repro.obs.metrics import NULL_SPAN, Metrics
from repro.obs.spans import NULL_TRACE_SPAN, SpanRecorder, derive_trace_id


class ObsState:
    """Mutable holder of the active observability session."""

    __slots__ = ("metrics", "tracer", "sink", "enabled", "profiling",
                 "rng_accounting", "spans")

    def __init__(self) -> None:
        self.metrics = Metrics(enabled=False)
        self.tracer: Optional[EventTracer] = None
        self.sink: Optional[JsonlTelemetrySink] = None
        self.enabled = False
        self.profiling = False
        self.rng_accounting = False
        self.spans: Optional[SpanRecorder] = None


STATE = ObsState()


def configure(
    *,
    telemetry_path: Optional[str] = None,
    profiling: bool = True,
    rng_accounting: bool = True,
    trace_sample_every: int = 1,
    spans: bool = True,
    trace_label: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> ObsState:
    """Enable instrumentation process-wide.

    ``telemetry_path`` additionally opens a JSONL sink and attaches an
    event tracer that simulators created *after* this call pick up.
    ``spans`` (default on) attaches a :class:`SpanRecorder` whose trace
    id derives from ``trace_label`` (or is taken verbatim from
    ``trace_id`` — how pool workers join the parent's trace).
    Returns :data:`STATE` (mutated in place).
    """
    reset()
    STATE.metrics = Metrics(enabled=True)
    STATE.enabled = True
    STATE.profiling = profiling
    STATE.rng_accounting = rng_accounting
    if telemetry_path is not None:
        STATE.sink = JsonlTelemetrySink(telemetry_path)
        STATE.tracer = EventTracer(STATE.sink, sample_every=trace_sample_every)
    if spans:
        STATE.spans = SpanRecorder(
            sink=STATE.sink,
            trace_id=(
                trace_id
                if trace_id is not None
                else derive_trace_id(trace_label or "session")
            ),
        )
    return STATE


def detach_inherited_session() -> None:
    """Disable a session inherited through ``fork`` without closing it.

    A forked worker process shares the parent's telemetry sink object
    (and its buffered, not-yet-flushed bytes).  Closing it from the
    child would flush that buffer a second time into the shared file
    descriptor, corrupting the parent's telemetry.  Workers therefore
    *detach* — null the references and restore disabled defaults — and
    then configure their own session (see :mod:`repro.parallel`).
    """
    STATE.metrics = Metrics(enabled=False)
    STATE.tracer = None
    STATE.sink = None
    STATE.enabled = False
    STATE.profiling = False
    STATE.rng_accounting = False
    STATE.spans = None


def reset() -> None:
    """Close any sink and restore the disabled defaults."""
    if STATE.sink is not None:
        STATE.sink.close()
    STATE.metrics = Metrics(enabled=False)
    STATE.tracer = None
    STATE.sink = None
    STATE.enabled = False
    STATE.profiling = False
    STATE.rng_accounting = False
    STATE.spans = None


@contextmanager
def session(**kwargs) -> Iterator[ObsState]:
    """``configure(**kwargs)`` for the duration of a with-block."""
    state = configure(**kwargs)
    try:
        yield state
    finally:
        reset()


@contextmanager
def ensure_metrics() -> Iterator[ObsState]:
    """Yield an enabled state, reusing an active session if one exists.

    Used by callers (the report builder) that want metrics regardless of
    whether the CLI already opened a session; only tears down what it
    set up.
    """
    if STATE.enabled:
        yield STATE
        return
    configure(telemetry_path=None)
    try:
        yield STATE
    finally:
        reset()


def metrics() -> Metrics:
    """The active metrics registry (a null registry when disabled)."""
    return STATE.metrics


def span(name: str, **labels: str):
    """A context-manager timer on the active registry (no-op when
    disabled).  For per-call hot paths prefer an explicit
    ``STATE.profiling`` guard; this helper is for per-trial /
    per-experiment granularity."""
    m = STATE.metrics
    if not m.enabled:
        return NULL_SPAN
    return m.timer(name, **labels).time()


def trace_span(name: str, **attrs):
    """Open a hierarchical trace span on the active recorder.

    No-op (a shared null context manager) when no session is active —
    one attribute load plus a branch, same cost discipline as the
    metric hooks.  Unlike :func:`span` (a flat timer histogram), this
    records one tree node per call: trace/span/parent ids, wall/CPU
    time, RSS delta, and the given attributes.
    """
    recorder = STATE.spans
    if recorder is None:
        return NULL_TRACE_SPAN
    return recorder.span(name, **attrs)
