"""Hierarchical span tracing: real trace trees over the telemetry stream.

The metrics registry answers "how much, in total"; spans answer *where
time went* — as a tree.  A :class:`SpanRecorder` maintains the active
span stack for its process and emits one ``type: span`` record per
finished span into the JSONL telemetry stream, carrying:

* identity — ``trace`` / ``span`` / ``parent`` ids that stitch records
  from any number of processes into one tree;
* cost — wall-clock seconds, CPU seconds (``time.process_time`` delta),
  and the RSS delta sampled from :mod:`repro.obs.resources`;
* context — the span name, the emitting ``pid``, free-form ``attrs``,
  and an ``ok``/``error`` status.

**Deterministic identity.**  Ids are not random: a trace id is a pure
function of its label (:func:`derive_trace_id`), and a span id is a pure
function of ``(trace id, parent id, name, sibling index)``.  Two runs of
the same campaign therefore produce the same tree ids, and — because the
parallel runner hands each worker task the *parent's* span context — a
``jobs=N`` run produces the identical span tree to ``jobs=1``, differing
only in the volatile fields (timings, pids).  :func:`span_structure`
strips the volatile fields so that identity can be asserted byte for
byte.

**Cross-process propagation.**  The worker side of a pool boundary
receives a :class:`SpanContext` (two strings, trivially picklable) and
enters it with :meth:`SpanRecorder.adopt`; spans opened inside the
adoption parent themselves under the remote span, so engine →
``run_tasks`` → worker → trial spans form one connected trace across
the telemetry shard family.

See docs/OBSERVABILITY.md for the record schema and
:mod:`repro.obs.export` for the Perfetto / waterfall renderers.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import Iterable, Iterator, Optional

from repro.obs.resources import rss_kb

#: Fields of a span record that legitimately differ between two runs of
#: the same campaign (or between ``jobs=1`` and ``jobs=N``).
VOLATILE_SPAN_FIELDS = frozenset(
    {"pid", "start_unix", "wall_s", "cpu_s", "rss_delta_kb"}
)


def _digest(*parts: str) -> str:
    """A 16-hex-char stable hash of the given strings."""
    payload = "\x1f".join(parts).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def derive_trace_id(*labels: str) -> str:
    """A deterministic trace id from run labels (command, seed, ...).

    Pure function of the labels — stable across processes and runs, so
    a re-run of the same campaign stitches into an identically-named
    trace and tests can pin ids.

    >>> derive_trace_id("report", "1996") == derive_trace_id("report", "1996")
    True
    >>> derive_trace_id("report", "1996") != derive_trace_id("report", "7")
    True
    """
    return _digest("trace", *labels)


def derive_span_id(
    trace_id: str, parent_id: Optional[str], name: str, index: int
) -> str:
    """A deterministic span id: a pure function of the span's path.

    ``index`` is the span's ordinal among same-named siblings, so
    repeated child names stay distinct while the id never depends on
    wall clock, pid, or worker rank.
    """
    return _digest("span", trace_id, parent_id or "", name, str(index))


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a live span (picklable, two strings)."""

    trace_id: str
    span_id: str


class _NullTraceSpan:
    """Shared no-op span for disabled sessions (stateless)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTraceSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


NULL_TRACE_SPAN = _NullTraceSpan()


class _ActiveSpan:
    """One live span: a context manager that emits its record on exit."""

    __slots__ = ("_recorder", "record", "_start_perf", "_start_cpu",
                 "_start_rss")

    def __init__(self, recorder: "SpanRecorder", record: dict) -> None:
        self._recorder = recorder
        self.record = record

    def set_attr(self, key: str, value) -> None:
        """Attach/overwrite one attribute while the span is live."""
        self.record["attrs"][key] = value

    def __enter__(self) -> "_ActiveSpan":
        self._start_cpu = process_time()
        self._start_rss = rss_kb() if self._recorder.sample_resources else 0
        self._start_perf = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = perf_counter() - self._start_perf
        record = self.record
        record["wall_s"] = wall_s
        record["cpu_s"] = process_time() - self._start_cpu
        record["rss_delta_kb"] = (
            rss_kb() - self._start_rss
            if self._recorder.sample_resources
            else 0
        )
        record["status"] = "ok" if exc_type is None else "error"
        if exc_type is not None:
            record["attrs"]["error"] = exc_type.__name__
        self._recorder._finish(self)
        return False


class SpanRecorder:
    """The per-process span stack, id assigner, and record emitter.

    One per observability session (``obs.STATE.spans``).  Finished span
    records are appended to :attr:`finished` (for in-process consumers:
    the report footer, tests) and emitted to ``sink`` when one is open.
    The recorder is process-local; cross-process stitching works by
    carrying a :class:`SpanContext` over the boundary and entering it
    with :meth:`adopt` on the far side.
    """

    def __init__(
        self,
        sink=None,
        trace_id: Optional[str] = None,
        sample_resources: bool = True,
    ) -> None:
        self.sink = sink
        self.trace_id = (
            trace_id if trace_id is not None else derive_trace_id("session")
        )
        self.sample_resources = sample_resources
        self.finished: list[dict] = []
        self._stack: list[str] = []  # span ids, innermost last
        # (parent id, name) -> next sibling ordinal; keyed per parent so
        # ordinals agree between a serial run and a pool run where each
        # worker sees only its own children of a shared remote parent.
        self._child_index: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def current(self) -> Optional[SpanContext]:
        """The innermost live span's portable context (None at root)."""
        if not self._stack:
            return None
        return SpanContext(self.trace_id, self._stack[-1])

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a child span of the current span (a context manager)."""
        parent = self._stack[-1] if self._stack else None
        key = (parent or "", name)
        index = self._child_index.get(key, 0)
        self._child_index[key] = index + 1
        span_id = derive_span_id(self.trace_id, parent, name, index)
        record = {
            "type": "span",
            "trace": self.trace_id,
            "span": span_id,
            "parent": parent,
            "name": name,
            "pid": os.getpid(),
            "start_unix": time.time(),
            "attrs": dict(attrs),
        }
        self._stack.append(span_id)
        return _ActiveSpan(self, record)

    def _finish(self, span: _ActiveSpan) -> None:
        # Pop down to (and including) this span — tolerates a caller
        # leaking an inner span by exiting an outer one first.
        span_id = span.record["span"]
        while self._stack:
            if self._stack.pop() == span_id:
                break
        self.finished.append(span.record)
        if self.sink is not None:
            self.sink.emit(span.record)

    @contextmanager
    def adopt(self, context: SpanContext) -> Iterator[None]:
        """Enter a remote span context so new spans parent under it.

        Used on the worker side of a pool boundary: the parent process
        captures ``recorder.current()`` and ships it with the task; the
        worker adopts it for the task's duration, so the worker's spans
        stitch under the parent's tree (same trace id, linked parent
        ids).
        """
        saved_trace_id = self.trace_id
        self.trace_id = context.trace_id
        self._stack.append(context.span_id)
        try:
            yield
        finally:
            # Pop back to the adopted frame (tolerating leaked inners).
            while self._stack:
                if self._stack.pop() == context.span_id:
                    break
            self.trace_id = saved_trace_id


# ----------------------------------------------------------------------
# Record-set helpers (used by stats, export, and the merge tests)
# ----------------------------------------------------------------------
def span_structure(records: Iterable[dict]) -> list[tuple]:
    """The volatile-free shape of a span set, canonically ordered.

    Returns sorted ``(trace, span, parent, name)`` tuples — everything
    that identifies the tree, nothing that varies run to run (pids,
    timings, resource deltas).  Two runs of the same campaign — and a
    ``jobs=1`` vs a ``jobs=N`` run — must produce equal structures.
    """
    return sorted(
        (r["trace"], r["span"], r.get("parent"), r["name"])
        for r in records
        if r.get("type") == "span"
    )


def span_tree(
    records: Iterable[dict],
) -> tuple[list[dict], dict[str, list[dict]]]:
    """Index spans into ``(roots, children-by-parent-id)``.

    Roots are spans whose parent is absent from the record set (not
    just ``None`` — a shard read on its own has orphans whose parents
    live in the parent file).  Children are ordered by start time then
    span id, so rendering is deterministic.
    """
    spans = [r for r in records if r.get("type") == "span"]
    by_id = {r["span"]: r for r in spans}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is None or parent not in by_id:
            roots.append(record)
        else:
            children.setdefault(parent, []).append(record)
    order = lambda r: (r.get("start_unix", 0.0), r["span"])  # noqa: E731
    roots.sort(key=order)
    for siblings in children.values():
        siblings.sort(key=order)
    return roots, children
