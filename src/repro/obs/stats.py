"""Summarize a telemetry JSONL file (``python -m repro stats FILE``).

A parallel run (``--jobs N``) writes per-worker shard files next to the
parent telemetry file (see :mod:`repro.parallel.shards`); the
summarizer discovers them automatically and folds their records into
one stream, so ``stats run.jsonl`` reports the whole run whether it was
serial or parallel.  Merged run manifests (records carrying
``merged_from``) are reported separately and excluded from the
per-experiment totals — their counters are sums of per-task manifests
already in the stream.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import PathLike, iter_telemetry, read_telemetry_header


@dataclass
class TelemetrySummary:
    """Aggregate view of one telemetry file (plus its shards)."""

    path: str
    header: dict
    record_count: int = 0
    event_count: int = 0
    event_names: TallyCounter = field(default_factory=TallyCounter)
    event_handler_s: float = 0.0
    max_queue_depth: int = 0
    manifests: list[dict] = field(default_factory=list)
    merged_manifests: list[dict] = field(default_factory=list)
    shard_paths: list[str] = field(default_factory=list)
    final_metrics: Optional[dict] = None
    span_count: int = 0
    span_wall_s: float = 0.0
    span_pids: set = field(default_factory=set)
    heartbeat_count: int = 0
    peak_rss_kb: int = 0

    @property
    def total_wall_clock_s(self) -> float:
        return sum(m.get("wall_clock_s", 0.0) for m in self.manifests)

    @property
    def total_events_fired(self) -> int:
        return sum(m.get("events_fired", 0) for m in self.manifests)

    @property
    def total_packets_offered(self) -> int:
        return sum(m.get("packets_offered", 0) for m in self.manifests)


def summarize_telemetry(
    path: PathLike, include_shards: bool = True
) -> TelemetrySummary:
    """Stream-aggregate a telemetry file in constant memory.

    ``include_shards`` (the default) folds any per-worker shard files
    of a parallel run into the same summary.  Every file is consumed
    through the streaming :func:`repro.obs.events.iter_telemetry` —
    one record in flight at a time — so multi-GB shard directories
    summarize without ever loading a file whole.
    """
    summary = TelemetrySummary(
        path=str(path), header=read_telemetry_header(path)
    )
    _fold_stream(summary, path)
    if include_shards:
        from repro.parallel.shards import find_shards

        for shard in find_shards(path):
            summary.shard_paths.append(str(shard))
            _fold_stream(summary, shard)
    return summary


def _fold_stream(summary: TelemetrySummary, path: PathLike) -> None:
    """Accumulate one telemetry file's record stream into ``summary``."""
    for record in iter_telemetry(path):
        summary.record_count += 1
        kind = record.get("type")
        if kind == "event":
            summary.event_count += 1
            summary.event_names[record.get("name") or "(unnamed)"] += 1
            summary.event_handler_s += record.get("dur_us", 0.0) * 1e-6
            depth = record.get("queue_depth", 0)
            if depth > summary.max_queue_depth:
                summary.max_queue_depth = depth
        elif kind == "manifest":
            if record.get("merged_from") is not None:
                summary.merged_manifests.append(record)
            else:
                summary.manifests.append(record)
            peak = record.get("peak_rss_kb") or 0
            if peak > summary.peak_rss_kb:
                summary.peak_rss_kb = peak
        elif kind == "metrics":
            summary.final_metrics = record.get("metrics")
        elif kind == "span":
            summary.span_count += 1
            summary.span_pids.add(record.get("pid"))
            if record.get("parent") is None:
                summary.span_wall_s += record.get("wall_s", 0.0)
        elif kind == "heartbeat":
            summary.heartbeat_count += 1
        elif kind == "resource":
            peak = record.get("peak_rss_kb", 0)
            if peak > summary.peak_rss_kb:
                summary.peak_rss_kb = peak


def render_summary(summary: TelemetrySummary, top: int = 10) -> str:
    """Human-readable report for one telemetry file."""
    lines = [
        f"telemetry file: {summary.path}",
        f"  records: {summary.record_count} "
        f"(events {summary.event_count}, manifests {len(summary.manifests)})",
    ]
    if summary.shard_paths:
        lines.append(
            f"  shards: {len(summary.shard_paths)} worker files folded in"
        )
    for merged in summary.merged_manifests:
        lines.append(
            f"  merged run '{merged.get('experiment', '?')}': "
            f"{len(merged.get('merged_from', []))} tasks, "
            f"jobs={merged.get('jobs', '?')}, "
            f"{merged.get('wall_clock_s', 0.0):.2f}s wall-clock, "
            f"{merged.get('packets_offered', 0)} packets offered"
        )
    if summary.manifests:
        lines.append(
            f"  run totals: {summary.total_wall_clock_s:.2f}s wall-clock, "
            f"{summary.total_events_fired} events fired, "
            f"{summary.total_packets_offered} packets offered"
        )
        lines.append("  experiments:")
        for manifest in summary.manifests:
            seed = manifest.get("seed")
            scale = manifest.get("scale")
            lines.append(
                f"    {manifest.get('experiment', '?'):<12} "
                f"wall={manifest.get('wall_clock_s', 0.0):.2f}s "
                f"events={manifest.get('events_fired', 0)} "
                f"packets={manifest.get('packets_offered', 0)} "
                f"seed={'default' if seed is None else seed} "
                f"scale={'default' if scale is None else f'{scale:g}'}"
            )
    if summary.span_count:
        pids = len(summary.span_pids)
        lines.append(
            f"  trace spans: {summary.span_count} across {pids} "
            f"process{'es' if pids != 1 else ''}, "
            f"{summary.span_wall_s:.2f}s root wall-clock "
            f"(render with `python -m repro timeline {summary.path}`)"
        )
    if summary.heartbeat_count:
        lines.append(f"  heartbeats: {summary.heartbeat_count}")
    if summary.peak_rss_kb:
        lines.append(
            f"  peak RSS: {summary.peak_rss_kb / 1024:.0f} MB"
        )
    if summary.event_count:
        lines.append(
            f"  event spans: {summary.event_handler_s * 1e3:.1f}ms handler "
            f"time, max queue depth {summary.max_queue_depth}"
        )
        lines.append("  top event names:")
        for name, count in summary.event_names.most_common(top):
            lines.append(f"    {name:<20} {count}")
    if summary.final_metrics is not None:
        counters = summary.final_metrics.get("counters", {})
        nonzero = {k: v for k, v in counters.items() if v}
        lines.append(f"  final counters ({len(nonzero)} nonzero):")
        for key in sorted(nonzero):
            lines.append(f"    {key:<40} {nonzero[key]}")
    return "\n".join(lines)


def main(path: str) -> int:
    """CLI entry point for the ``stats`` subcommand."""
    summary = summarize_telemetry(path)
    try:
        print(render_summary(summary))
    except BrokenPipeError:
        pass  # downstream pager/head closed the pipe; not an error
    return 0
