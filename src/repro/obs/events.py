"""Structured run telemetry: the JSONL sink and the simulator tracer.

The telemetry file follows the same conventions as the trial-trace
format (docs/TRACE_FORMAT.md): JSON-lines, gzipped when the filename
ends in ``.gz``, a self-describing header on line 1, and a reader that
refuses unknown versions loudly.  Record types after the header:

* ``event`` — one fired simulator event (name, sim time, queueing
  delay, handler wall-clock, queue depth after firing);
* ``manifest`` — one per-experiment run manifest (see
  :mod:`repro.obs.manifest`);
* ``metrics`` — a full metrics snapshot, normally emitted once when the
  observability session closes.

The schema is documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import gzip
import json
import time
from pathlib import Path
from typing import IO, Iterator, Optional, Union

TELEMETRY_FORMAT = 1
TELEMETRY_KIND = "repro-telemetry"

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        if "w" in mode:
            # Deterministic member header (mtime=0, no filename), so
            # identical telemetry compresses to identical bytes — the
            # serial-vs-jobs=N byte-identity invariants extend to .gz
            # shard families.
            from repro.parallel.shards import open_deterministic_gzip_text

            return open_deterministic_gzip_text(path)
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class JsonlTelemetrySink:
    """Append-only JSONL telemetry writer.

    Writes the header eagerly so even an aborted run leaves a valid,
    identifiable file.  ``emit`` takes any JSON-serializable mapping
    with a ``type`` key; the sink never rewrites or buffers records
    beyond the underlying stream's own buffering.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.records_written = 0
        self._stream: Optional[IO] = _open(path, "w")
        self._stream.write(json.dumps({
            "format": TELEMETRY_FORMAT,
            "kind": TELEMETRY_KIND,
            "created_unix": time.time(),
        }) + "\n")

    def emit(self, record: dict) -> None:
        if self._stream is None:
            raise ValueError(f"{self.path}: telemetry sink already closed")
        self._stream.write(json.dumps(record) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        """Push buffered records to disk now.

        Worker processes of a parallel run exit through ``os._exit``
        (multiprocessing skips ``atexit``), which discards stream
        buffers — so shard sinks flush after every record batch.
        """
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JsonlTelemetrySink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _read_header(path: PathLike, stream: IO) -> dict:
    """Read and validate the line-1 header of an open telemetry stream."""
    header_line = stream.readline()
    if not header_line:
        raise ValueError(f"{path}: empty telemetry file")
    header = json.loads(header_line)
    if header.get("kind") != TELEMETRY_KIND:
        raise ValueError(f"{path}: not a telemetry file")
    if header.get("format") != TELEMETRY_FORMAT:
        raise ValueError(
            f"{path}: format {header.get('format')} "
            f"(this reader supports {TELEMETRY_FORMAT})"
        )
    return header


def read_telemetry_header(path: PathLike) -> dict:
    """Read just the validated line-1 header of a telemetry file."""
    with _open(path, "r") as stream:
        return _read_header(path, stream)


def read_telemetry(path: PathLike) -> tuple[dict, list[dict]]:
    """Read a telemetry file; returns ``(header, records)``.

    Raises ValueError on kind/format mismatches — same contract as the
    trial-trace reader.  Loads the whole file; for multi-GB telemetry
    families prefer the streaming :func:`iter_telemetry`.
    """
    with _open(path, "r") as stream:
        header = _read_header(path, stream)
        records = [json.loads(line) for line in stream if line.strip()]
    return header, records


def iter_telemetry(path: PathLike) -> Iterator[dict]:
    """Stream records one at a time (header validated and skipped).

    A true generator over the open stream — constant memory however
    large the file, which is what lets ``stats`` fold multi-GB shard
    directories.  Header validation errors raise on the first
    ``next()``, matching :func:`read_telemetry`'s contract.
    """
    with _open(path, "r") as stream:
        _read_header(path, stream)
        for line in stream:
            if line.strip():
                yield json.loads(line)


class EventTracer:
    """Per-event tracing hook the :class:`~repro.simkit.simulator.Simulator`
    calls from its dispatch loop.

    ``sample_every`` thins the record stream (1 = every event); the
    aggregate histograms in the metrics registry are unaffected by
    sampling, so summaries stay exact even when the event log is thinned.
    """

    def __init__(self, sink: JsonlTelemetrySink, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sink = sink
        self.sample_every = sample_every
        self.events_seen = 0

    def event_fired(
        self,
        name: str,
        sim_time: float,
        created_time: float,
        duration_s: float,
        queue_depth: int,
    ) -> None:
        self.events_seen += 1
        if self.events_seen % self.sample_every:
            return
        self.sink.emit({
            "type": "event",
            "name": name,
            "sim_t": sim_time,
            "queued_s": sim_time - created_time,
            "dur_us": duration_s * 1e6,
            "queue_depth": queue_depth,
        })
