"""Metric instruments and the hierarchical registry.

The registry hands out four instrument kinds, all addressed by a
dot-hierarchical name plus optional labels::

    registry.counter("phy.bits_flipped").inc(3)
    registry.counter("link.drops", reason="mac_collision").inc()
    registry.gauge("sim.queue_depth").set(17)
    with registry.timer("profile.trial_fast").time():
        ...

Names follow the layer namespace documented in docs/OBSERVABILITY.md
(``sim.*``, ``phy.*``, ``mac.*``, ``link.*``, ``trace.*``, ``match.*``,
``fec.*``, ``rng.*``, ``profile.*``).  Labels are folded into the storage
key as ``name{k=v,...}`` with keys sorted, so snapshots are plain
string-keyed dictionaries.

A registry created with ``enabled=False`` returns shared *null*
instruments whose mutators are no-ops — the disabled mode the hot paths
rely on.  Instrument handles are cheap to re-fetch (one dict lookup) but
callers on per-event paths should fetch once and hold the handle.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Optional


def scoped_name(name: str, labels: Optional[dict] = None) -> str:
    """Fold ``labels`` into a flat storage key: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary statistics (count/total/min/max/stddev).

    Keeps running moments rather than samples, so recording is O(1) and
    the memory footprint is constant regardless of event volume.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_sumsq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._sumsq = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def state(self) -> dict:
        """Exact internal moments — the mergeable representation.

        Unlike :meth:`summary` (which reports derived statistics), this
        keeps the raw sum of squares so two histograms can be folded
        together without precision loss.
        """
        return {
            "count": self.count,
            "total": self.total,
            "sumsq": self._sumsq,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        if not state["count"]:
            return
        self.count += state["count"]
        self.total += state["total"]
        self._sumsq += state["sumsq"]
        if state["min"] < self.minimum:
            self.minimum = state["min"]
        if state["max"] > self.maximum:
            self.maximum = state["max"]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        variance = self._sumsq / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))

    def summary(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": None, "max": None,
                    "mean": 0.0, "stddev": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "stddev": self.stddev,
        }


class Timer:
    """A histogram of elapsed seconds with a context-manager front end."""

    __slots__ = ("histogram",)

    def __init__(self) -> None:
        self.histogram = Histogram()

    def time(self) -> "_TimerSpan":
        return _TimerSpan(self.histogram)

    def record(self, elapsed_s: float) -> None:
        self.histogram.record(elapsed_s)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_s(self) -> float:
        return self.histogram.total


class _TimerSpan:
    """One timed region; records wall-clock seconds on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_TimerSpan":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.record(perf_counter() - self._start)


# ----------------------------------------------------------------------
# Null instruments: what a disabled registry hands out.  All mutators
# are no-ops; reads report zero/empty.  Shared singletons, stateless.
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullSpan:
    """A reusable no-op context manager (no per-use state)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def time(self) -> "_NullSpan":  # type: ignore[override]
        return NULL_SPAN

    def record(self, elapsed_s: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_SPAN = _NullSpan()
NULL_TIMER = _NullTimer()


class Metrics:
    """The instrument registry.

    One instance per observability session; the process-wide default
    lives in :mod:`repro.obs.runtime` and is disabled until the CLI (or
    a test) configures a session.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        key = scoped_name(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        key = scoped_name(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = scoped_name(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def timer(self, name: str, **labels: str) -> Timer:
        if not self.enabled:
            return NULL_TIMER
        key = scoped_name(name, labels)
        instrument = self._timers.get(key)
        if instrument is None:
            instrument = self._timers[key] = Timer()
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All instrument values as plain JSON-serializable dictionaries."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
            "timers": {
                k: t.histogram.summary() for k, t in sorted(self._timers.items())
            },
        }

    def counters_snapshot(self) -> dict[str, int]:
        """Just the counters — the cheap diffable slice manifests use."""
        return {k: c.value for k, c in self._counters.items()}

    # ------------------------------------------------------------------
    # Mergeable state: how worker-process registries fold back into the
    # parent's after a parallel run (see repro.parallel).
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Every instrument's exact internal state, JSON/pickle-safe.

        Counters and gauges export their values; histograms and timers
        export raw moments (:meth:`Histogram.state`), so a merge is
        exact — no reconstruction from derived statistics.
        """
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.state() for k, h in self._histograms.items()},
            "timers": {
                k: t.histogram.state() for k, t in self._timers.items()
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` dictionary into this registry.

        Counters add, histogram/timer moments add (min/max take the
        extremum), gauges take the incoming value (last write wins, so
        merge in a deterministic order).  No-op on a disabled registry.
        """
        if not self.enabled:
            return
        for key, value in state.get("counters", {}).items():
            self._plain(self._counters, key, Counter).value += value
        for key, value in state.get("gauges", {}).items():
            self._plain(self._gauges, key, Gauge).value = value
        for key, hist_state in state.get("histograms", {}).items():
            self._plain(self._histograms, key, Histogram).merge_state(
                hist_state
            )
        for key, timer_state in state.get("timers", {}).items():
            self._plain(self._timers, key, Timer).histogram.merge_state(
                timer_state
            )

    @staticmethod
    def _plain(table: dict, key: str, kind: type):
        """Fetch-or-create by pre-scoped key (labels already folded in)."""
        instrument = table.get(key)
        if instrument is None:
            instrument = table[key] = kind()
        return instrument

    def reset(self) -> None:
        """Forget every instrument (values and registrations)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()


def render_snapshot(snapshot: dict) -> str:
    """Human-readable multi-section rendering of :meth:`Metrics.snapshot`."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for key, value in counters.items():
            lines.append(f"  {key:<{width}}  {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for key, value in gauges.items():
            lines.append(f"  {key:<{width}}  {value:g}")
    for section in ("histograms", "timers"):
        entries = snapshot.get(section, {})
        if not entries:
            continue
        lines.append(f"{section}:")
        width = max(len(k) for k in entries)
        for key, summary in entries.items():
            if summary["count"] == 0:
                lines.append(f"  {key:<{width}}  (empty)")
                continue
            lines.append(
                f"  {key:<{width}}  n={summary['count']} "
                f"mean={summary['mean']:.3g} min={summary['min']:.3g} "
                f"max={summary['max']:.3g} total={summary['total']:.3g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
