"""Optional numba-compiled kernel tier.

The numpy implementations scattered through ``phy``, ``fec`` and
``analysis`` are the *executable reference*: they define the semantics,
run everywhere, and are what every test pins.  This module offers
drop-in compiled twins for the three innermost kernels —

* the error model's log-space probability fold
  (:func:`fold_probabilities`),
* the matcher's plurality vote (:func:`plurality_vote`),
* the Viterbi add-compare-select step loop + traceback
  (:func:`viterbi_batch`),

— each asserted byte-identical to its numpy twin by
``tests/test_compiled.py`` whenever numba is importable.

The tier is **off by default** and opt-in twice over:

* numba must be installed (``pip install 'repro[compiled]'``); the
  import is probed once at module load and :data:`HAVE_NUMBA` records
  the outcome.  Nothing in this repo requires it.
* the flag must be raised — either the ``REPRO_COMPILED=1`` environment
  variable or :func:`set_compiled`.

Callers never import numba themselves; they ask
:func:`compiled_enabled` and fall back to their numpy path when it is
false.  Raising the flag without numba present warns once and stays on
the numpy path, so a mis-provisioned machine degrades gracefully
instead of crashing.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default container path
    _numba = None
    HAVE_NUMBA = False

#: Environment variable that opts a whole process into the compiled
#: tier (any of "1", "true", "yes", "on"; case-insensitive).
ENV_FLAG = "REPRO_COMPILED"

_TRUTHY = {"1", "true", "yes", "on"}

_requested = os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY
_warned_missing = False

#: Lazily-compiled kernel cache: numba compilation costs seconds, so
#: each kernel is jitted on first use, not at import.
_KERNELS: dict[str, Callable] = {}


def compiled_available() -> bool:
    """True when numba imported successfully in this process."""
    return HAVE_NUMBA


def compiled_enabled() -> bool:
    """True when the flag is raised *and* numba is available."""
    return _requested and HAVE_NUMBA


def set_compiled(enabled: bool) -> bool:
    """Raise or lower the compiled-tier flag programmatically.

    Returns the effective state (:func:`compiled_enabled`).  Requesting
    the tier without numba installed warns once per process and leaves
    every caller on the numpy reference path.
    """
    global _requested, _warned_missing
    _requested = bool(enabled)
    if _requested and not HAVE_NUMBA and not _warned_missing:
        _warned_missing = True
        warnings.warn(
            "compiled tier requested but numba is not installed; "
            "staying on the numpy reference path "
            "(pip install 'repro[compiled]')",
            RuntimeWarning,
            stacklevel=2,
        )
    return compiled_enabled()


def _kernel(name: str, builder: Callable[[], Callable]) -> Callable:
    kernel = _KERNELS.get(name)
    if kernel is None:
        kernel = builder()
        _KERNELS[name] = kernel
    return kernel


# ----------------------------------------------------------------------
# Error-model probability fold
# ----------------------------------------------------------------------
def _build_fold():  # pragma: no cover - requires numba
    @_numba.njit(cache=False)
    def fold(base, columns):
        n = base.shape[0]
        k = columns.shape[0]
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            acc = np.log1p(-base[i])
            for j in range(k):
                acc += np.log1p(-columns[j, i])
            out[i] = 1.0 - np.exp(acc)
        return out

    return fold


def fold_probabilities(base: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """Compiled ``1 - prod(1 - p)`` fold in log space.

    ``base`` is ``(n,)``; ``columns`` is ``(k, n)``.  Accumulation
    order matches the numpy reference (base first, then each column in
    order), so results are byte-identical.
    """
    kernel = _kernel("fold", _build_fold)
    return kernel(
        np.ascontiguousarray(base, dtype=np.float64),
        np.ascontiguousarray(columns, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# Matcher plurality vote
# ----------------------------------------------------------------------
def _build_vote():  # pragma: no cover - requires numba
    @_numba.njit(cache=False)
    def vote(words):
        n = words.shape[0]
        counts = {}
        first = {}
        for i in range(n):
            w = words[i]
            if w in counts:
                counts[w] += 1
            else:
                counts[w] = 1
                first[w] = i
        best_val = words[0]
        best_count = 0
        best_first = n
        for w in counts:
            c = counts[w]
            f = first[w]
            if c > best_count or (c == best_count and f < best_first):
                best_val = w
                best_count = c
                best_first = f
        return best_val, best_count

    return vote


def plurality_vote(words: np.ndarray) -> tuple[int, int]:
    """Compiled ``(winner, count)`` plurality over a 1-D int array.

    Ties on count go to the value whose first occurrence is earliest —
    the same tie-break as ``collections.Counter.most_common`` over a
    left-to-right scan, and as the numpy reference in
    ``analysis.matching``.
    """
    kernel = _kernel("vote", _build_vote)
    winner, count = kernel(np.ascontiguousarray(words, dtype=np.int64))
    return int(winner), int(count)


# ----------------------------------------------------------------------
# Viterbi ACS + traceback
# ----------------------------------------------------------------------
def _build_viterbi():  # pragma: no cover - requires numba
    @_numba.njit(cache=False)
    def decode(
        cost_pattern,  # (batch, steps, 2**n_outputs) float64
        branch_pattern,  # (n_branches,) int64 — output-pattern index
        from_state,  # (n_branches,) int64
        input_bit,  # (n_branches,) uint8
        pred_branches,  # (n_states, 2) int64
        terminated,  # bool
    ):
        batch, steps, _ = cost_pattern.shape
        n_states = pred_branches.shape[0]
        decoded = np.empty((batch, steps), dtype=np.uint8)
        metrics = np.empty(n_states, dtype=np.float64)
        fresh = np.empty(n_states, dtype=np.float64)
        traceback = np.empty((steps, n_states), dtype=np.int32)
        for b in range(batch):
            for s in range(n_states):
                metrics[s] = 1e9
            metrics[0] = 0.0
            for step in range(steps):
                for state in range(n_states):
                    b0 = pred_branches[state, 0]
                    b1 = pred_branches[state, 1]
                    c0 = (
                        metrics[from_state[b0]]
                        + cost_pattern[b, step, branch_pattern[b0]]
                    )
                    c1 = (
                        metrics[from_state[b1]]
                        + cost_pattern[b, step, branch_pattern[b1]]
                    )
                    if c1 < c0:
                        fresh[state] = c1
                        traceback[step, state] = b1
                    else:
                        fresh[state] = c0
                        traceback[step, state] = b0
                metrics, fresh = fresh, metrics
            if terminated:
                state = 0
            else:
                state = 0
                best = metrics[0]
                for s in range(1, n_states):
                    if metrics[s] < best:
                        best = metrics[s]
                        state = s
            for step in range(steps - 1, -1, -1):
                branch = traceback[step, state]
                decoded[b, step] = input_bit[branch]
                state = from_state[branch]
        return decoded

    return decode


def viterbi_batch(
    cost_pattern: np.ndarray,
    branch_pattern: np.ndarray,
    from_state: np.ndarray,
    input_bit: np.ndarray,
    pred_branches: np.ndarray,
    terminated: bool,
) -> np.ndarray:
    """Compiled batched add-compare-select + traceback.

    Identical floating-point operation order to the numpy step loop in
    ``fec.viterbi`` (one add per candidate, strict ``<`` preferring the
    first predecessor on ties, first-minimum end state), so decoded
    bits are byte-identical.
    """
    kernel = _kernel("viterbi", _build_viterbi)
    return kernel(
        np.ascontiguousarray(cost_pattern, dtype=np.float64),
        np.ascontiguousarray(branch_pattern, dtype=np.int64),
        np.ascontiguousarray(from_state, dtype=np.int64),
        np.ascontiguousarray(input_bit, dtype=np.uint8),
        np.ascontiguousarray(pred_branches, dtype=np.int64),
        bool(terminated),
    )


__all__ = [
    "ENV_FLAG",
    "HAVE_NUMBA",
    "compiled_available",
    "compiled_enabled",
    "set_compiled",
    "fold_probabilities",
    "plurality_vote",
    "viterbi_batch",
]
