"""Parallel experiment execution.

A process-pool runner (:func:`run_tasks`) that fans independent,
seed-stable tasks across workers while keeping three invariants:
results are byte-identical to a serial run, worker metrics fold back
into the parent registry exactly, and telemetry lands in per-worker
shards the ``stats`` subcommand reads as one stream.

Quick use::

    from repro.parallel import Task, run_tasks

    tasks = [Task(name, fn, kwargs={"seed": seed, ...}) for ...]
    results = run_tasks(tasks, jobs=8, label="my-run")
    values = [r.value for r in results]   # in task order

Workers that produce traces (or classified traces) hand them back as
columnar handoff blocks (:mod:`repro.parallel.handoff`) — a v2 file,
shared-memory block, or inline bytes — instead of pickling per-packet
record objects; ``run_tasks`` resolves the handles transparently.

Wired into the CLI as ``python -m repro report --jobs N`` (and
``--jobs`` on experiments with independent trials, e.g. ``table2``).
See docs/OBSERVABILITY.md for the sharding and merge semantics.
"""

from repro.parallel.handoff import (
    PortableClassifiedTrace,
    RingClient,
    RingSlotHandle,
    RingTransport,
    TraceHandle,
    detach_ring,
    export_block,
    export_classified,
    export_trace,
    load_ring_slot,
    merge_trace_handles,
    resolve_portable,
)
from repro.parallel.pool import PersistentPool, maybe_pool
from repro.parallel.runner import (
    Task,
    TaskResult,
    default_jobs,
    merged_manifest_record,
    run_tasks,
)
from repro.parallel.shards import find_shards, shard_path

__all__ = [
    "PersistentPool",
    "PortableClassifiedTrace",
    "RingClient",
    "RingSlotHandle",
    "RingTransport",
    "Task",
    "TaskResult",
    "TraceHandle",
    "default_jobs",
    "detach_ring",
    "export_block",
    "load_ring_slot",
    "export_classified",
    "export_trace",
    "maybe_pool",
    "find_shards",
    "merge_trace_handles",
    "merged_manifest_record",
    "resolve_portable",
    "run_tasks",
    "shard_path",
]
