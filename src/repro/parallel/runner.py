"""The process-pool task runner.

Fans independent, seed-stable tasks (whole experiments, or the trials
inside one) out across worker processes, with three guarantees:

* **Determinism** — a task's result depends only on its own arguments
  (every seed is derived from the experiment seed and the task's name
  through :mod:`repro.simkit.rng`, never from worker rank or execution
  order), and results are returned in task order.  ``jobs=N`` therefore
  produces byte-identical tables to ``jobs=1``.
* **Mergeable observability** — each worker runs its own metrics
  registry per task and exports its exact state; the parent folds the
  states back in task order (:meth:`repro.obs.Metrics.merge_state`), so
  final counters equal a serial run's.  Worker telemetry goes to
  per-worker JSONL shards (:mod:`repro.parallel.shards`); the parent
  file gets one merged run manifest.
* **Serial fidelity** — ``jobs=1`` runs every task in-process against
  the active observability session, byte-for-byte what the pre-parallel
  code paths did.  The pool only exists when requested.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from multiprocessing import util as _mp_util
from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import Any, Callable, Optional, Sequence

from repro import obs
from repro.obs import resources as _resources
from repro.obs import runtime as _obs_runtime
from repro.obs.spans import SpanContext
from repro.parallel.handoff import resolve_portable
from repro.parallel.shards import shard_path


@dataclass(frozen=True)
class Task:
    """One unit of parallel work.

    ``fn`` must be picklable by reference (a module-level callable) and
    ``kwargs`` must carry everything the task needs — including its
    seed, so the result is independent of which worker runs it.
    ``seed``/``scale`` are metadata stamped into the task's manifest.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)
    seed: Optional[int] = None
    scale: Optional[float] = None

    __test__ = False  # not a pytest test class despite the name


@dataclass
class TaskResult:
    """A finished task: its value plus its observability freight."""

    name: str
    value: Any
    wall_clock_s: float
    # Exact worker-registry state for this task (None when the run was
    # unobserved or executed inline against the parent registry).
    metrics_state: Optional[dict] = None
    # The task's run-manifest record (None when unobserved).
    manifest: Optional[dict] = None

    __test__ = False


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": cpu count."""
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def _worker_init(session_kwargs: Optional[dict], telemetry_parent: Optional[str],
                 index_counter) -> None:
    """Per-worker-process setup: its own observability session.

    A forked worker inherits the parent's live session; it must detach
    (not close) before configuring its own, or the parent's buffered
    telemetry would be flushed twice into the shared file descriptor.
    """
    _obs_runtime.detach_inherited_session()
    if session_kwargs is None:
        return  # parent was not observing; workers don't either
    telemetry = None
    if telemetry_parent is not None:
        if index_counter is not None:
            with index_counter.get_lock():
                index = index_counter.value
                index_counter.value += 1
        else:  # spawn start method: no inherited counter, use the pid
            index = os.getpid()
        telemetry = str(shard_path(telemetry_parent, index))
    obs.configure(telemetry_path=telemetry, **session_kwargs)
    # Pool workers exit through os._exit, which skips atexit and drops
    # stream buffers — land the shard header now and flush after every
    # task (_execute_task) so shards are always complete on disk.
    state = obs.STATE
    if state.sink is not None:
        state.sink.flush()
        # flush() is not enough for .gz shards: GzipFile writes its
        # end-of-stream trailer only on close().  multiprocessing runs
        # Finalize callbacks in the worker's bootstrap teardown (before
        # os._exit), so close the shard there.
        _mp_util.Finalize(state.sink, state.sink.close, exitpriority=100)


def _execute_task(
    task: Task,
    git_rev: Optional[str],
    task_manifests: bool = True,
    span_context: Optional[tuple[str, str]] = None,
) -> TaskResult:
    """Run one task in a worker and capture its observability state.

    The worker registry is reset per task, so the exported state and
    the manifest both describe exactly this task's deltas.
    ``span_context`` is the parent process's live span (trace id, span
    id): the task's own span — and everything the task opens inside —
    parents under it, stitching the worker's telemetry shard into the
    parent's trace.
    """
    state = obs.STATE
    if state.enabled:
        state.metrics.reset()
    recorder = state.spans
    adopt = (
        recorder.adopt(SpanContext(*span_context))
        if recorder is not None and span_context is not None
        else nullcontext()
    )
    cpu_before = process_time()
    with adopt:
        task_span = (
            recorder.span(task.name, kind="task")
            if recorder is not None
            else nullcontext()
        )
        start = perf_counter()
        with task_span:
            value = task.fn(**task.kwargs)
        wall_clock_s = perf_counter() - start
    metrics_state = manifest = None
    if state.enabled:
        manifest = obs.build_manifest(
            task.name,
            metrics=state.metrics,
            counters_before={},
            wall_clock_s=wall_clock_s,
            seed=task.seed,
            scale=task.scale,
            git_rev=git_rev,
            cpu_s=process_time() - cpu_before,
            peak_rss_kb=_resources.peak_rss_kb() or None,
        ).to_record()
        if task_manifests and state.sink is not None:
            state.sink.emit(manifest)
            state.sink.flush()
        metrics_state = state.metrics.export_state()
    return TaskResult(
        name=task.name,
        value=value,
        wall_clock_s=wall_clock_s,
        metrics_state=metrics_state,
        manifest=manifest,
    )


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------
def _run_task_inline(
    task: Task, git_rev: Optional[str], task_manifests: bool = True
) -> TaskResult:
    """Serial path: run against the active session, as pre-parallel
    code did — counter deltas via a before snapshot, manifest straight
    to the session sink.  The task span opens on the live stack, so the
    tree (and its deterministic ids) matches a pool run's exactly."""
    state = obs.STATE
    counters_before = state.metrics.counters_snapshot()
    cpu_before = process_time()
    start = perf_counter()
    with _obs_runtime.trace_span(task.name, kind="task"):
        value = task.fn(**task.kwargs)
    wall_clock_s = perf_counter() - start
    manifest = None
    if state.enabled:
        manifest = obs.build_manifest(
            task.name,
            metrics=state.metrics,
            counters_before=counters_before,
            wall_clock_s=wall_clock_s,
            seed=task.seed,
            scale=task.scale,
            git_rev=git_rev,
            cpu_s=process_time() - cpu_before,
            peak_rss_kb=_resources.peak_rss_kb() or None,
        ).to_record()
        if task_manifests and state.sink is not None:
            state.sink.emit(manifest)
    return TaskResult(
        name=task.name,
        value=value,
        wall_clock_s=wall_clock_s,
        manifest=manifest,
    )


def _pool_context():
    """Fork when the platform offers it (cheap, shares loaded modules);
    spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _session_kwargs(state) -> Optional[dict]:
    """The worker-session configuration mirroring the parent's.

    Carries the parent's trace id so every worker's span recorder joins
    the same trace (parent linkage travels per task, as a span
    context)."""
    if not state.enabled:
        return None
    return {
        "profiling": state.profiling,
        "rng_accounting": state.rng_accounting,
        "trace_sample_every": (
            state.tracer.sample_every if state.tracer is not None else 1
        ),
        "spans": state.spans is not None,
        "trace_id": state.spans.trace_id if state.spans is not None else None,
    }


def merged_manifest_record(
    label: str, results: Sequence[TaskResult], wall_clock_s: float
) -> dict:
    """One manifest summarizing a whole parallel run.

    Carries ``merged_from`` (the task names) so readers — the ``stats``
    subcommand in particular — can tell it from per-task manifests and
    avoid double counting.
    """
    merged = obs.RunManifest(
        experiment=label,
        seed=None,
        scale=None,
        git_rev=next(
            (r.manifest.get("git_rev") for r in results if r.manifest), None
        ),
        wall_clock_s=wall_clock_s,
        events_fired=0,
        packets_offered=0,
    )
    for result in results:
        if result.manifest is None:
            continue
        merged.events_fired += result.manifest.get("events_fired", 0)
        merged.packets_offered += result.manifest.get("packets_offered", 0)
        cpu_s = result.manifest.get("cpu_s")
        if cpu_s is not None:
            merged.cpu_s = (merged.cpu_s or 0.0) + cpu_s
        peak = result.manifest.get("peak_rss_kb")
        if peak is not None:  # per-process high-water: max, not sum
            merged.peak_rss_kb = max(merged.peak_rss_kb or 0, peak)
        for key, delta in result.manifest.get("rng_streams", {}).items():
            merged.rng_streams[key] = merged.rng_streams.get(key, 0) + delta
        for key, delta in result.manifest.get("layer_counters", {}).items():
            merged.layer_counters[key] = (
                merged.layer_counters.get(key, 0) + delta
            )
    record = merged.to_record()
    record["merged_from"] = [r.name for r in results]
    return record


def _emit_heartbeat(
    state,
    label: Optional[str],
    done: int,
    total: int,
    packets_offered: int,
    elapsed_s: float,
) -> None:
    """One progress heartbeat: a telemetry record when a sink is open
    (flushed immediately so ``timeline --follow`` sees it live), a
    stderr line otherwise."""
    rate = packets_offered / elapsed_s if elapsed_s > 0 else 0.0
    if state.enabled:
        state.metrics.gauge("progress.done").set(done)
        state.metrics.gauge("progress.packets_per_s").set(rate)
    if state.enabled and state.sink is not None:
        state.sink.emit({
            "type": "heartbeat",
            "label": label or "run",
            "done": done,
            "total": total,
            "packets_offered": packets_offered,
            "packets_per_s": round(rate, 1),
            "rss_kb": _resources.rss_kb(),
            "unix": time.time(),
        })
        state.sink.flush()
    else:
        print(
            f"progress: {label or 'run'} {done}/{total} tasks "
            f"({rate:,.0f} pkt/s)",
            file=sys.stderr,
        )


def _manifest_packets(results: Sequence[Optional[TaskResult]]) -> int:
    return sum(
        r.manifest.get("packets_offered", 0)
        for r in results
        if r is not None and r.manifest is not None
    )


def run_tasks(
    tasks: Sequence[Task],
    jobs: int = 1,
    label: Optional[str] = None,
    git_rev: Optional[str] = None,
    task_manifests: bool = True,
    progress: bool = False,
) -> list[TaskResult]:
    """Run ``tasks`` and return their results in task order.

    ``jobs <= 1`` executes inline (the exact serial code path);
    ``jobs > 1`` fans out over a process pool, folds each worker's
    metrics state back into the active registry in task order, and —
    when ``label`` is given and a telemetry sink is open — emits one
    merged run manifest to the parent sink.

    ``task_manifests=False`` suppresses the per-task manifest records
    (each :class:`TaskResult` still carries its own manifest) — used
    when the caller emits a single per-experiment manifest and
    trial-level records would double-count in ``stats``.

    ``progress=True`` emits one heartbeat record per finished task
    (tasks done/total, cumulative packets/s) to the telemetry sink —
    or a stderr line when no sink is open — so long runs are watchable
    via ``python -m repro timeline FILE --follow``.

    Task values that are handoff objects (:mod:`repro.parallel.handoff`
    — a worker-persisted columnar trace handle or a portable classified
    trace) are resolved before the results are returned, so callers see
    the same materialized values a serial run produces.

    The whole call runs under a ``parallel.run_tasks`` trace span, and
    each task's own span parents under it — via the live stack when
    inline, via a propagated :class:`~repro.obs.spans.SpanContext` when
    pooled — so the span tree (and its deterministic ids) is identical
    for any ``jobs`` value.
    """
    state = obs.STATE
    with _obs_runtime.trace_span(
        "parallel.run_tasks", label=label or "", tasks=len(tasks), jobs=jobs
    ):
        if jobs <= 1 or len(tasks) <= 1:
            start = perf_counter()
            results = []
            for task in tasks:
                results.append(
                    _run_task_inline(task, git_rev, task_manifests)
                )
                if progress:
                    _emit_heartbeat(
                        state, label, len(results), len(tasks),
                        _manifest_packets(results), perf_counter() - start,
                    )
            for result in results:
                result.value = resolve_portable(result.value)
            return results

        context = _pool_context()
        session_kwargs = _session_kwargs(state)
        telemetry_parent = (
            str(state.sink.path) if state.sink is not None else None
        )
        index_counter = (
            context.Value("i", 0)
            if telemetry_parent is not None
            and context.get_start_method() == "fork"
            else None
        )
        # The live span context travels with every task so worker-side
        # spans parent under this run_tasks span.
        span_context = None
        if state.spans is not None:
            current = state.spans.current()
            if current is not None:
                span_context = (current.trace_id, current.span_id)
        start = perf_counter()
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(session_kwargs, telemetry_parent, index_counter),
        ) as pool:
            futures = [
                pool.submit(
                    _execute_task, task, git_rev, task_manifests, span_context
                )
                for task in tasks
            ]
            if progress:
                # Heartbeat as completions land, while still returning
                # results in task order.
                pending = set(futures)
                while pending:
                    _finished, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    done_results = [
                        f.result() for f in futures if f.done()
                    ]
                    _emit_heartbeat(
                        state, label, len(done_results), len(tasks),
                        _manifest_packets(done_results),
                        perf_counter() - start,
                    )
            results = [future.result() for future in futures]
        for result in results:
            result.value = resolve_portable(result.value)
        # Fold worker registries back in task order (deterministic merge).
        if state.enabled:
            for result in results:
                if result.metrics_state is not None:
                    state.metrics.merge_state(result.metrics_state)
            if state.sink is not None and label is not None:
                record = merged_manifest_record(
                    label, results, perf_counter() - start
                )
                record["jobs"] = workers
                state.sink.emit(record)
        return results
