"""A long-lived worker pool for streaming workloads.

:func:`repro.parallel.runner.run_tasks` builds a pool per call — right
for batch experiments, wrong for a server that classifies chunks for
hours: pool startup (fork/spawn, worker session init) would land on the
latency path of every request wave.  :class:`PersistentPool` keeps one
:class:`~concurrent.futures.ProcessPoolExecutor` warm for the process
lifetime, with the same worker-side session hygiene ``run_tasks`` uses
(each worker detaches any fork-inherited observability session so the
parent's telemetry stream stays uncorrupted), and adds an
asyncio-friendly :meth:`run` that submits work without blocking an
event loop.

Work units should travel light: callers ship traces through
:mod:`repro.parallel.handoff` handles (shared memory or temp files) and
get compact column arrays back, never per-record object graphs.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Optional

from repro.parallel.runner import _pool_context, _worker_init


class PersistentPool:
    """A warm process pool with repro worker-session hygiene.

    ``jobs`` caps concurrent workers.  Workers run *unobserved* (their
    inherited observability session is detached at init) — streaming
    callers keep spans, metrics, and heartbeats in the parent process,
    where per-session state lives.  Use as a context manager, or call
    :meth:`shutdown` explicitly::

        with PersistentPool(jobs=4) as pool:
            future = pool.submit(fn, *args)        # concurrent.futures
            value = await pool.run(fn, *args)      # asyncio

    ``sharded=True`` turns the pool into ``jobs`` independent
    single-worker executors addressed by ``shard=`` on submit/run.
    A plain executor hands each task to whichever worker frees up
    first, so per-worker caches (matcher template banks, attached
    ring segments, classifier state) thrash as a session's chunks
    wander between processes.  Sticky routing pins everything a
    session touches to one worker for its whole life — the cache
    warms once and stays warm.  Submitting without ``shard`` in
    sharded mode round-robins, for shard-agnostic work.
    """

    def __init__(self, jobs: int, sharded: bool = False) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.sharded = sharded
        context = _pool_context()
        if sharded:
            self._executors = [
                ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(None, None, None),
                )
                for _ in range(jobs)
            ]
        else:
            self._executors = [
                ProcessPoolExecutor(
                    max_workers=jobs,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(None, None, None),
                )
            ]
        self._round_robin = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _executor_for(self, shard: Optional[int]) -> ProcessPoolExecutor:
        if len(self._executors) == 1:
            return self._executors[0]
        if shard is None:
            shard = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.jobs
        return self._executors[shard % self.jobs]

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        shard: Optional[int] = None,
    ) -> Future:
        if self._closed:
            raise RuntimeError("pool is shut down")
        return self._executor_for(shard).submit(fn, *args)

    async def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        shard: Optional[int] = None,
    ) -> Any:
        """Submit and await without blocking the running event loop."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        return await asyncio.wrap_future(self.submit(fn, *args, shard=shard))

    def shutdown(self, wait: bool = True) -> None:
        """Idempotent teardown; ``wait=True`` drains in-flight work."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=wait)

    # ------------------------------------------------------------------
    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def maybe_pool(jobs: int) -> Optional[PersistentPool]:
    """A pool when ``jobs > 1``, else ``None`` (inline execution)."""
    return PersistentPool(jobs) if jobs > 1 else None
