"""Telemetry shard naming and discovery for parallel runs.

A parallel run with ``--telemetry run.jsonl --jobs N`` produces the
parent file ``run.jsonl`` (merged manifest + final merged metrics) plus
one shard per worker process — ``run.shard-000.jsonl``,
``run.shard-001.jsonl``, … — holding that worker's per-task manifests
and event records.  The ``stats`` subcommand discovers the shards
automatically and reads the whole family as one stream.

Shard names derive deterministically from the parent path: the
``.jsonl`` / ``.jsonl.gz`` suffix is preserved (so gzip-by-suffix keeps
working) and the worker index is zero-padded for stable sort order.
Gzipped shards are also byte-deterministic in content: the writer here
(:func:`open_deterministic_gzip_text`) pins the gzip member header's
mtime to zero and embeds no filename, so re-running a parallel
experiment produces bit-identical ``.gz`` shard families.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

_SUFFIXES = (".jsonl.gz", ".jsonl", ".gz")
SHARD_TAG = ".shard-"


def split_suffix(path: Path) -> tuple[str, str]:
    """Split ``run.jsonl.gz`` into ``("run", ".jsonl.gz")``.

    Paths without a recognized telemetry suffix keep their name whole
    and get shards named ``<name>.shard-NNN`` (no extension).
    """
    name = path.name
    for suffix in _SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def shard_path(parent: str | Path, index: int) -> Path:
    """The telemetry path worker ``index`` of a parallel run writes to."""
    parent = Path(parent)
    stem, suffix = split_suffix(parent)
    return parent.with_name(f"{stem}{SHARD_TAG}{index:03d}{suffix}")


class _DeterministicGzip(gzip.GzipFile):
    """Gzip writer whose member header carries no timestamp/filename.

    ``gzip.open`` stamps the current time (and lifts the target name)
    into the header, making identical shard contents compare unequal.
    Owning the raw stream and passing ``mtime=0`` with an empty
    ``filename`` drops both fields.
    """

    def __init__(self, path: Path) -> None:
        self._raw = open(path, "wb")
        super().__init__(filename="", fileobj=self._raw, mode="wb", mtime=0)

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw.close()


def open_deterministic_gzip_text(path: str | Path):
    """A UTF-8 text stream writing a byte-deterministic ``.gz`` file."""
    return io.TextIOWrapper(_DeterministicGzip(Path(path)), encoding="utf-8")


def find_shards(parent: str | Path) -> list[Path]:
    """All existing shard files of ``parent``, in worker-index order.

    Returns an empty list for a serial run (no shards) or when
    ``parent`` is itself a shard (shards have no sub-shards).
    """
    parent = Path(parent)
    stem, suffix = split_suffix(parent)
    if SHARD_TAG in stem:
        return []
    pattern = f"{stem}{SHARD_TAG}*{suffix}"
    directory = parent.parent if parent.parent != Path("") else Path(".")
    return sorted(directory.glob(pattern))
