"""Shared-memory / columnar-file handoff for parallel trace results.

Before this module, a pool worker that produced a trace (or a classified
trace) pickled every :class:`~repro.trace.records.PacketRecord` back to
the parent — hundreds of thousands of per-object pickle round-trips that
threw away the bulk-path speedups the worker had just earned.  The
handoff instead persists the worker's records as a **format v2 columnar
block** (:mod:`repro.trace.columnar`) and ships only a small handle:

* ``via="file"`` — a temp file next to the system temp dir (or a caller
  directory); the parent memory-maps it zero-copy and unlinks it on
  load (POSIX keeps the mapping valid).  The default: robust across
  fork and spawn.
* ``via="shm"`` — a ``multiprocessing.shared_memory`` block; the parent
  attaches and reads the columns in place — no filesystem traffic at
  all.  For in-process fan-out on fork platforms.
* ``via="inline"`` — the v2 bytes ride inside the pickle itself.  Still
  ~100x cheaper than pickling record objects (one flat buffer instead
  of an object graph); useful for tiny traces and tests.

The bytes in the block are exactly the v2 file format, so all three
transports share one reader.  Classified traces travel as compact
per-packet columns plus the trace handle
(:class:`PortableClassifiedTrace`); the parent's ``resolve()`` rebuilds
a :class:`~repro.analysis.classify.ClassifiedTrace` whose packets carry
lazy record views over the shared columns.  ``run_tasks`` resolves
top-level portable values automatically, and
:func:`merge_trace_handles` concatenates shard columns for
single-trace workloads split across workers.
"""

from __future__ import annotations

import io
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.analysis.classify import (
    CLASS_CODE,
    CLASS_ORDER,
    ClassifiedPacket,
    ClassifiedTrace,
)
from repro.analysis.syndrome import ErrorSyndrome
from repro.obs import runtime as _obs
from repro.trace.columnar import (
    ColumnarTrace,
    read_columnar,
    read_columnar_buffer,
    write_columnar,
)
from repro.trace.records import TrialTrace

AnyTrace = Union[TrialTrace, ColumnarTrace]

# Stable wire order for PacketClass codes (u1 column) — the canonical
# table lives with the enum in repro.analysis.classify.
_CLASS_ORDER = CLASS_ORDER
_CLASS_CODE = CLASS_CODE


@dataclass
class TraceHandle:
    """A picklable pointer to a columnar trace block.

    ``load()`` consumes the handle: file backings are unlinked once
    mapped and shared-memory blocks unlinked once attached, so a handle
    is a transfer of ownership, not a shared reference.  ``release()``
    discards the block without reading it (error paths).
    """

    kind: str  # "file" | "shm" | "inline"
    location: Union[str, bytes]

    def load(self) -> ColumnarTrace:
        with _obs.trace_span("handoff.load", kind=self.kind):
            return self._load()

    def _load(self) -> ColumnarTrace:
        if self.kind == "file":
            trace = read_columnar(self.location)
            try:
                os.unlink(self.location)
            except OSError:
                pass
            return trace
        if self.kind == "shm":
            from multiprocessing import shared_memory

            block = shared_memory.SharedMemory(name=self.location)
            trace = read_columnar_buffer(
                block.buf, origin=f"shm://{self.location}", backing=block
            )
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            return trace
        if self.kind == "inline":
            return read_columnar_buffer(self.location, origin="<inline>")
        raise ValueError(f"unknown trace handle kind {self.kind!r}")

    def release(self) -> None:
        """Discard the block without loading it."""
        if self.kind == "file":
            try:
                os.unlink(self.location)
            except OSError:
                pass
        elif self.kind == "shm":
            from multiprocessing import shared_memory

            try:
                block = shared_memory.SharedMemory(name=self.location)
            except FileNotFoundError:
                return
            block.close()
            block.unlink()

    def __portable_resolve__(self) -> ColumnarTrace:
        return self.load()


def _columnar_bytes(trace: AnyTrace) -> bytes:
    buffer = io.BytesIO()
    write_columnar(trace, buffer)
    return buffer.getvalue()


def export_block(
    payload: bytes,
    via: str = "file",
    directory: Optional[Union[str, Path]] = None,
) -> TraceHandle:
    """Ship already-encoded v2 columnar bytes as a :class:`TraceHandle`.

    The byte-level sibling of :func:`export_trace` for callers that
    hold the block itself — the streaming ingest service's wire chunks
    *are* v2 blocks, so they cross the pool boundary without being
    re-encoded.
    """
    if via == "file":
        fd, path = tempfile.mkstemp(
            prefix=f"repro-{os.getpid()}-", suffix=".wlt2",
            dir=str(directory) if directory is not None else None,
        )
        with os.fdopen(fd, "wb") as stream:
            stream.write(payload)
        return TraceHandle(kind="file", location=path)
    if via == "shm":
        from multiprocessing import resource_tracker, shared_memory

        block = shared_memory.SharedMemory(create=True, size=len(payload))
        block.buf[: len(payload)] = payload
        name = block.name
        block.close()
        # Ownership moves to whoever loads the handle; stop this
        # process's resource tracker from unlinking (and warning about)
        # the block when the worker exits.
        try:
            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:  # pragma: no cover - tracker impl detail
            pass
        return TraceHandle(kind="shm", location=name)
    if via == "inline":
        return TraceHandle(kind="inline", location=payload)
    raise ValueError(f"unknown handoff transport {via!r}")


# ----------------------------------------------------------------------
# Ring transport: reusable shm slots for streaming ingest
# ----------------------------------------------------------------------
_RING_COUNTER = 0


def _untrack_shm(name: str) -> None:
    """Remove ``name`` from this process's shm resource tracker.

    Creating *or attaching* a segment registers it (CPython <=3.12),
    and forked pool workers share the parent's tracker — so explicit
    lifecycle management has to unregister on both sides or the
    tracker ends up double-removing one name and warning about it.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker impl detail
        pass


@dataclass(frozen=True)
class RingSlotHandle:
    """A picklable lease on one slot of a :class:`RingTransport`.

    Unlike :class:`TraceHandle`, loading a slot does **not** consume
    it — the slot belongs to the ring owner, who releases it back to
    the free list after the worker's result arrives.  The handle is
    just coordinates: which ring, which slot, how many bytes are live.
    """

    ring: str
    index: int
    offset: int
    nbytes: int


class RingTransport:
    """A preallocated ring of reusable shared-memory slots.

    The per-chunk shm transport (:func:`export_block` ``via="shm"``)
    pays a segment create + resource-tracker dance + unlink for every
    chunk.  A streaming session sends thousands of same-sized chunks;
    the ring pays the segment cost **once**, then every chunk is a
    single ``memcpy`` into a leased slot and a free-list push when the
    verdict comes back.  Steady state: zero allocations, zero
    filesystem traffic, zero kernel object churn.

    Overflow is loud, never silent: :meth:`lease` returns ``None`` when
    no slot is free or the payload exceeds ``slot_bytes``, bumps the
    ``overflows`` counter, and the caller falls back to a slower
    transport.  :meth:`stats` reports ``leases`` / ``overflows`` /
    ``max_in_use`` so a mis-sized ring shows up in summaries and
    metrics instead of as mystery latency.

    Single-owner discipline: the creating process leases, releases and
    closes; workers only attach read-only views via
    :func:`load_ring_slot`.  ``close()`` unlinks the segment — call it
    exactly once, when the session ends.
    """

    def __init__(
        self,
        slots: int,
        slot_bytes: int,
        name: Optional[str] = None,
    ) -> None:
        from multiprocessing import shared_memory

        if slots <= 0:
            raise ValueError("ring needs at least one slot")
        if slot_bytes <= 0:
            raise ValueError("ring slots need positive capacity")
        global _RING_COUNTER
        _RING_COUNTER += 1
        self.name = name or f"repro_ring_{os.getpid()}_{_RING_COUNTER}"
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._block = shared_memory.SharedMemory(
            name=self.name, create=True, size=slots * slot_bytes
        )
        # The ring's lifetime is managed explicitly (``close`` unlinks
        # it); take it out of the resource tracker's hands so parent
        # and forked workers — who share one tracker — never fight
        # over the same registration.
        _untrack_shm(self.name)
        # LIFO free list: the most recently released slot is the most
        # likely to still be warm in cache when re-leased.
        self._free = list(range(slots - 1, -1, -1))
        self._closed = False
        self.leases = 0
        self.overflows = 0
        self.max_in_use = 0

    @property
    def slots_free(self) -> int:
        return len(self._free)

    def reset(self) -> None:
        """Make the ring fresh for a new owner without recreating it.

        Rebuilds the free list and zeroes the per-session counters but
        keeps the segment — and, critically, its already-faulted pages
        — alive.  A reused ring costs warm ``memcpy``; a recreated one
        pays a page fault per 4 KiB touched, which dominates the whole
        ingest path.  Only call between owners (no slot handles may be
        outstanding).
        """
        if self._closed:
            raise ValueError(f"ring {self.name} is closed")
        self._free = list(range(self.slots - 1, -1, -1))
        self.leases = 0
        self.overflows = 0
        self.max_in_use = 0

    def lease(self, payload) -> Optional[RingSlotHandle]:
        """Copy ``payload`` into a free slot and return its handle.

        Returns ``None`` (and counts an overflow) when the payload
        exceeds slot capacity or every slot is leased out — the caller
        must fall back to another transport; the ring never blocks and
        never drops bytes silently.
        """
        nbytes = len(payload)
        if self._closed or nbytes > self.slot_bytes or not self._free:
            self.overflows += 1
            return None
        index = self._free.pop()
        offset = index * self.slot_bytes
        self._block.buf[offset : offset + nbytes] = payload
        self.leases += 1
        in_use = self.slots - len(self._free)
        if in_use > self.max_in_use:
            self.max_in_use = in_use
        return RingSlotHandle(
            ring=self.name, index=index, offset=offset, nbytes=nbytes
        )

    def release(self, index: int) -> None:
        """Return a leased slot to the free list (owner side)."""
        if self._closed:
            return
        if not 0 <= index < self.slots:
            raise ValueError(f"slot {index} outside ring of {self.slots}")
        if index in self._free:
            raise ValueError(f"slot {index} double-released")
        self._free.append(index)

    def stats(self) -> dict:
        return {
            "slots": self.slots,
            "slot_bytes": self.slot_bytes,
            "leases": self.leases,
            "overflows": self.overflows,
            "max_in_use": self.max_in_use,
        }

    def close(self) -> None:
        """Tear the segment down (idempotent).  Owner side only."""
        if self._closed:
            return
        self._closed = True
        self._free = []
        self._block.close()
        # Unlink without going through SharedMemory.unlink(): that
        # would also unregister a name this process already untracked,
        # and the tracker complains loudly about unbalanced removals.
        try:
            import _posixshmem

            _posixshmem.shm_unlink(f"/{self.name}")
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        except ImportError:  # pragma: no cover - non-POSIX platform
            try:
                self._block.unlink()
            except FileNotFoundError:
                pass


class RingClient:
    """Same-host client access to a server-granted slot ring.

    The inverse perspective of :class:`RingTransport`: the *server*
    created and will unlink the segment; the client attaches by name,
    owns the free list (the HELLO_OK grant hands over every slot), and
    writes chunk payloads straight into slots — the socket then carries
    only slot references.  Slots come back via the ``released`` list on
    ACK frames (:meth:`reclaim`).  ``write`` returning ``None`` means
    no slot fits — the caller falls back to an ordinary full-payload
    CHUNK frame, which the server counts as a ring overflow.
    """

    def __init__(self, name: str, slots: int, slot_bytes: int) -> None:
        from multiprocessing import shared_memory

        self.name = name
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._block = shared_memory.SharedMemory(name=name)
        # The server unlinks at session end; this process must not.
        _untrack_shm(name)
        self._free = list(range(slots - 1, -1, -1))
        self.writes = 0
        self.fallbacks = 0

    @property
    def slots_free(self) -> int:
        return len(self._free)

    def write(self, payload) -> Optional[tuple[int, int]]:
        """Place ``payload`` in a free slot; ``(slot, nbytes)`` or None."""
        nbytes = len(payload)
        if nbytes > self.slot_bytes or not self._free:
            self.fallbacks += 1
            return None
        slot = self._free.pop()
        offset = slot * self.slot_bytes
        self._block.buf[offset : offset + nbytes] = payload
        self.writes += 1
        return slot, nbytes

    def reclaim(self, slots) -> None:
        """Return ACK-released slots to the free list."""
        for slot in slots:
            slot = int(slot)
            if 0 <= slot < self.slots and slot not in self._free:
                self._free.append(slot)

    def close(self) -> None:
        """Detach (never unlink — the ring belongs to the server)."""
        try:
            self._block.close()
        except BufferError:  # pragma: no cover - live views
            pass


# Worker-side attachment cache: one mmap per ring per worker process,
# reused across every chunk of the session (attach once, view many).
_ATTACHED_RINGS: dict = {}


def _attach_ring(name: str):
    from multiprocessing import shared_memory

    block = _ATTACHED_RINGS.get(name)
    if block is None:
        block = shared_memory.SharedMemory(name=name)
        # The owner controls the ring's lifetime; this worker's attach
        # must not leave a tracker registration behind.
        _untrack_shm(name)
        _ATTACHED_RINGS[name] = block
    return block


def load_ring_slot(handle: RingSlotHandle) -> ColumnarTrace:
    """Worker side: map a leased slot as a zero-copy columnar trace.

    The returned trace's columns alias the shared segment directly —
    valid until the owner reuses the slot, which by protocol cannot
    happen before the worker's result for this chunk returns.
    """
    block = _attach_ring(handle.ring)
    view = block.buf[handle.offset : handle.offset + handle.nbytes]
    return read_columnar_buffer(
        view,
        origin=f"ring://{handle.ring}/{handle.index}",
        backing=block,
    )


def detach_ring(name: str) -> None:
    """Drop this process's cached attachment to a ring (worker side)."""
    block = _ATTACHED_RINGS.pop(name, None)
    if block is not None:
        try:
            block.close()
        except BufferError:  # pragma: no cover - live views; exit cleans up
            pass


def export_trace(
    trace: AnyTrace,
    via: str = "file",
    directory: Optional[Union[str, Path]] = None,
) -> TraceHandle:
    """Persist ``trace`` as a v2 columnar block and return its handle.

    Called on the worker side of a pool boundary; the returned handle
    pickles in constant size however many records the trace holds.
    """
    if via == "file":
        fd, path = tempfile.mkstemp(
            prefix=f"repro-{os.getpid()}-", suffix=".wlt2",
            dir=str(directory) if directory is not None else None,
        )
        with os.fdopen(fd, "wb") as stream:
            write_columnar(trace, stream)
        return TraceHandle(kind="file", location=path)
    if via in ("shm", "inline"):
        return export_block(_columnar_bytes(trace), via=via)
    raise ValueError(f"unknown handoff transport {via!r}")


# ----------------------------------------------------------------------
# Classified traces
# ----------------------------------------------------------------------
@dataclass
class PortableClassifiedTrace:
    """A classified trace flattened for the pool boundary.

    Per-packet verdicts travel as compact numpy columns, raw records as
    a :class:`TraceHandle`; only the damaged minority's syndromes keep
    their object form.  ``resolve()`` reconstructs a
    :class:`ClassifiedTrace` equivalent (verdict-for-verdict) to the
    one the worker classified.
    """

    handle: TraceHandle
    class_codes: np.ndarray
    sequences: np.ndarray  # -1 encodes "no sequence recovered"
    wrapper_damaged: np.ndarray
    body_bits_damaged: np.ndarray
    truncated_missing: np.ndarray
    syndromes: list[tuple[int, ErrorSyndrome]] = field(default_factory=list)

    def resolve(self) -> ClassifiedTrace:
        trace = self.handle.load()
        syndrome_by_index = dict(self.syndromes)
        packets = []
        sequences = self.sequences.tolist()
        for index, code in enumerate(self.class_codes.tolist()):
            sequence = sequences[index]
            packets.append(
                ClassifiedPacket(
                    record=trace.record_view(index),
                    packet_class=_CLASS_ORDER[code],
                    sequence=None if sequence < 0 else sequence,
                    syndrome=syndrome_by_index.get(index),
                    wrapper_damaged=bool(self.wrapper_damaged[index]),
                    body_bits_damaged=int(self.body_bits_damaged[index]),
                    truncated_bytes_missing=int(
                        self.truncated_missing[index]
                    ),
                )
            )
        return ClassifiedTrace(trace=trace, packets=packets)

    def __portable_resolve__(self) -> ClassifiedTrace:
        return self.resolve()


def export_classified(
    classified: ClassifiedTrace,
    via: str = "file",
    directory: Optional[Union[str, Path]] = None,
) -> PortableClassifiedTrace:
    """Flatten a classified trace for the pool boundary (worker side)."""
    packets = classified.packets
    n = len(packets)
    class_codes = np.empty(n, dtype=np.uint8)
    sequences = np.empty(n, dtype=np.int64)
    wrapper_damaged = np.empty(n, dtype=bool)
    body_bits = np.empty(n, dtype=np.int64)
    truncated = np.empty(n, dtype=np.int32)
    syndromes: list[tuple[int, ErrorSyndrome]] = []
    for index, packet in enumerate(packets):
        class_codes[index] = _CLASS_CODE[packet.packet_class]
        sequences[index] = -1 if packet.sequence is None else packet.sequence
        wrapper_damaged[index] = packet.wrapper_damaged
        body_bits[index] = packet.body_bits_damaged
        truncated[index] = packet.truncated_bytes_missing
        if packet.syndrome is not None:
            syndromes.append((index, packet.syndrome))
    return PortableClassifiedTrace(
        handle=export_trace(classified.trace, via=via, directory=directory),
        class_codes=class_codes,
        sequences=sequences,
        wrapper_damaged=wrapper_damaged,
        body_bits_damaged=body_bits,
        truncated_missing=truncated,
        syndromes=syndromes,
    )


def merge_trace_handles(
    handles: Sequence[TraceHandle], name: Optional[str] = None
) -> ColumnarTrace:
    """The merge step for single-trace workloads split across workers:
    load every shard handle and concatenate the columns (offsets are
    rebased; ``packets_sent`` adds up, matching
    :meth:`TrialTrace.extend` semantics)."""
    return ColumnarTrace.concat([h.load() for h in handles], name=name)


def resolve_portable(value):
    """Resolve one task value if it is a handoff object (else pass it
    through).  Used by :func:`repro.parallel.runner.run_tasks` so pool
    results arrive resolved, exactly as a serial run would have
    produced them."""
    resolver = getattr(value, "__portable_resolve__", None)
    if resolver is not None:
        with _obs.trace_span(
            "handoff.resolve", value=type(value).__name__
        ):
            return resolver()
    return value
