"""The Intel-82593-style medium access control layer.

WaveLAN "employs a CSMA/CA (collision avoidance) MAC protocol ...
WaveLAN CSMA/CA attempts to avoid collision losses by treating a busy
medium as a collision: any stations which become ready to transmit while
the medium is busy will delay for a random interval when the medium
becomes free" (paper, Section 2).  The controller otherwise performs all
standard Ethernet functions: framing, address filtering, CRC checking,
and exponential backoff.

* :mod:`~repro.mac.backoff` — truncated binary exponential backoff.
* :mod:`~repro.mac.csma` — CSMA/CA, plus a CSMA/CD baseline used by the
  ablation benchmarks.
* :mod:`~repro.mac.controller` — the 82593 receive path: network-ID and
  address filtering, CRC check, promiscuous mode.
"""

from repro.mac.backoff import BackoffPolicy
from repro.mac.controller import ControllerConfig, LanController, RxFrameStatus
from repro.mac.csma import CsmaCaMac, CsmaCdMac, MacStats

__all__ = [
    "BackoffPolicy",
    "ControllerConfig",
    "CsmaCaMac",
    "CsmaCdMac",
    "LanController",
    "MacStats",
    "RxFrameStatus",
]
