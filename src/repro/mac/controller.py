"""The 82593 LAN controller's receive path.

"Aside from the modified MAC protocol and lower data rate, the 82593
performs all standard Ethernet functions, including framing, address
recognition and filtering, CRC generation and checking" (paper, Section
2).  The paper's tracing driver put both the controller and the modem
into promiscuous mode and disabled CRC filtering so damaged packets
reached the log — this module implements both the normal filtering path
and that promiscuous path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.framing import ethernet, modem
from repro.framing.crc import check_fcs
from repro.framing.ethernet import MacAddress
from repro.obs import runtime as _obs


class RxFrameStatus(enum.Enum):
    """The controller's verdict on an incoming frame."""

    ACCEPTED = "accepted"
    WRONG_NETWORK_ID = "wrong_network_id"
    ADDRESS_MISMATCH = "address_mismatch"
    CRC_ERROR = "crc_error"
    RUNT = "runt"  # too short to contain a header


@dataclass
class ControllerConfig:
    """Receive-side filter configuration."""

    station_address: MacAddress
    network_id: int = modem.DEFAULT_NETWORK_ID
    promiscuous: bool = False
    filter_network_id: bool = True
    check_crc: bool = True
    accept_broadcast: bool = True


@dataclass
class RxResult:
    """Controller output for one frame offered by the modem."""

    status: RxFrameStatus
    ethernet_bytes: Optional[bytes] = None
    crc_ok: Optional[bool] = None

    @property
    def delivered(self) -> bool:
        return self.status is RxFrameStatus.ACCEPTED


@dataclass
class LanController:
    """Filters modem frames down to host-visible Ethernet frames."""

    config: ControllerConfig
    stats: dict[RxFrameStatus, int] = field(default_factory=dict)

    def _count(self, status: RxFrameStatus) -> None:
        self.stats[status] = self.stats.get(status, 0) + 1
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter("mac.controller_rx", status=status.value).inc()

    def receive(self, modem_frame: bytes) -> RxResult:
        """Apply network-ID, length, address and CRC filters.

        In promiscuous mode with CRC checking disabled — the paper's
        tracing configuration — everything parseable is accepted; the
        CRC verdict is still computed and reported so the analysis can
        classify wrapper damage.
        """
        if len(modem_frame) < modem.NETWORK_ID_LEN:
            self._count(RxFrameStatus.RUNT)
            return RxResult(RxFrameStatus.RUNT)
        parsed = modem.ModemFrame.parse(modem_frame)

        if self.config.filter_network_id and not self.config.promiscuous:
            if not parsed.matches(self.config.network_id):
                self._count(RxFrameStatus.WRONG_NETWORK_ID)
                return RxResult(RxFrameStatus.WRONG_NETWORK_ID)

        eth_bytes = parsed.ethernet
        if len(eth_bytes) < ethernet.HEADER_LEN:
            self._count(RxFrameStatus.RUNT)
            return RxResult(RxFrameStatus.RUNT, ethernet_bytes=eth_bytes)

        crc_ok: Optional[bool] = None
        if len(eth_bytes) >= ethernet.HEADER_LEN + ethernet.FCS_LEN:
            crc_ok = check_fcs(eth_bytes)

        if not self.config.promiscuous:
            dst = MacAddress(eth_bytes[0:6])
            is_mine = dst.octets == self.config.station_address.octets
            is_broadcast = (
                self.config.accept_broadcast and dst.octets == b"\xff" * 6
            )
            if not (is_mine or is_broadcast or dst.is_multicast):
                self._count(RxFrameStatus.ADDRESS_MISMATCH)
                return RxResult(
                    RxFrameStatus.ADDRESS_MISMATCH, ethernet_bytes=eth_bytes
                )
            if self.config.check_crc and crc_ok is False:
                self._count(RxFrameStatus.CRC_ERROR)
                return RxResult(
                    RxFrameStatus.CRC_ERROR, ethernet_bytes=eth_bytes, crc_ok=False
                )

        self._count(RxFrameStatus.ACCEPTED)
        return RxResult(RxFrameStatus.ACCEPTED, ethernet_bytes=eth_bytes, crc_ok=crc_ok)
