"""Truncated binary exponential backoff (IEEE 802.3 style).

The 82593 performs "transmission scheduling with exponential backoff"
(paper, Section 2).  After the n-th consecutive collision on a frame the
station waits a uniform number of slot times in [0, 2^min(n, ceiling)),
abandoning the frame after ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BackoffPolicy:
    """Classic truncated binary exponential backoff."""

    slot_time_s: float = 50e-6
    ceiling: int = 10
    max_attempts: int = 16

    def window_slots(self, attempt: int) -> int:
        """Size of the contention window after ``attempt`` collisions.

        ``attempt`` counts collisions already suffered for this frame
        (first retry ⇒ attempt=1 ⇒ window of 2 slots).
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return 2 ** min(attempt, self.ceiling)

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """A random backoff delay in seconds after ``attempt`` collisions."""
        slots = int(rng.integers(0, self.window_slots(attempt)))
        return slots * self.slot_time_s

    def exhausted(self, attempt: int) -> bool:
        """Should the frame be dropped after this many collisions?"""
        return attempt >= self.max_attempts
