"""CSMA/CA (WaveLAN) and CSMA/CD (wired-Ethernet baseline) MACs.

The two protocols differ in what they treat as a collision:

* **CSMA/CD** (wired Ethernet): a station that becomes ready while the
  medium is busy transmits *as soon as the medium is free* — the
  optimistic assumption that it's the only waiter — and relies on
  collision *detection* to recover when that's wrong.
* **CSMA/CA** (WaveLAN): collisions can't be sensed on radio, so "any
  stations which become ready to transmit while the medium is busy will
  delay for a random interval when the medium becomes free" — a busy
  medium *is* a collision, and the random delay avoids the synchronized
  pile-up.

Both run against the abstract :class:`Medium` interface provided by
:class:`repro.link.channel.RadioChannel` (or the test doubles in the
unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

import numpy as np

from repro.mac.backoff import BackoffPolicy
from repro.obs import runtime as _obs
from repro.simkit.simulator import Simulator


class Medium(Protocol):
    """What a MAC needs from the shared medium."""

    def carrier_busy(self, station_id: int) -> bool:
        """Does ``station_id`` currently sense carrier (above threshold)?"""

    def begin_transmission(self, station_id: int, frame: bytes) -> float:
        """Start transmitting; returns the airtime duration in seconds."""

    def collision_detected(self, station_id: int) -> bool:
        """CSMA/CD only: is another transmission overlapping ours?"""

    def abort_transmission(self, station_id: int) -> None:
        """CSMA/CD only: stop our in-flight transmission (jam + abort)."""


@dataclass
class MacStats:
    """Counters the experiments read out.

    ``collisions`` counts CSMA/CA "busy medium at ready time" events —
    the quantity Figure 3's collision-rate curve is built from
    ("Recall that WaveLAN considers 'medium busy' a collision").
    """

    attempts: int = 0
    transmissions: int = 0
    collisions: int = 0
    drops: int = 0

    @property
    def collision_free_fraction(self) -> float:
        """Fraction of attempts that went out without sensing a collision."""
        if self.attempts == 0:
            return 0.0
        return 1.0 - self.collisions / self.attempts


@dataclass
class CsmaCaMac:
    """The WaveLAN MAC: carrier sense, collision avoidance, backoff."""

    sim: Simulator
    medium: Medium
    station_id: int
    rng: np.random.Generator
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    # Gap the station leaves after the medium goes idle before sampling
    # carrier again (models the hardware's interframe spacing).
    interframe_gap_s: float = 40e-6
    # Uniform jitter added to each gap.  Real stations' clocks drift;
    # without this, two stations sending equal-length frames phase-lock
    # and sample carrier only in each other's gaps — a simulation
    # artifact, not a radio behaviour.
    interframe_jitter_s: float = 30e-6
    on_sent: Optional[Callable[[bytes], None]] = None
    on_dropped: Optional[Callable[[bytes], None]] = None
    stats: MacStats = field(default_factory=MacStats)

    _busy: bool = field(default=False, init=False)
    _queue: list[bytes] = field(default_factory=list, init=False)

    def _gap(self) -> float:
        return self.interframe_gap_s + self.rng.uniform(0.0, self.interframe_jitter_s)

    @property
    def queue_length(self) -> int:
        """Frames waiting (including the one being worked on)."""
        return len(self._queue)

    def enqueue(self, frame: bytes) -> None:
        """Hand a frame to the MAC for transmission."""
        self._queue.append(frame)
        if not self._busy:
            self._busy = True
            self.sim.schedule(0.0, self._attempt_head, name="mac.attempt")

    def _attempt_head(self, attempt: int = 0) -> None:
        if not self._queue:
            self._busy = False
            return
        frame = self._queue[0]
        self.stats.attempts += 1
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter("mac.attempts", protocol="csma_ca").inc()
        if self.medium.carrier_busy(self.station_id):
            # Busy medium == collision under CSMA/CA.
            self.stats.collisions += 1
            if state.enabled:
                state.metrics.counter("mac.collisions", protocol="csma_ca").inc()
            next_attempt = attempt + 1
            if self.backoff.exhausted(next_attempt):
                self.stats.drops += 1
                if state.enabled:
                    state.metrics.counter(
                        "mac.drops", reason="backoff_exhausted"
                    ).inc()
                self._queue.pop(0)
                if self.on_dropped is not None:
                    self.on_dropped(frame)
                self.sim.schedule(0.0, self._attempt_head, name="mac.next")
                return
            # Draw order (gap, then backoff) must match the original
            # single-expression form to keep the rng stream stable.
            gap = self._gap()
            backoff_delay = self.backoff.delay(next_attempt, self.rng)
            if state.enabled:
                state.metrics.histogram("mac.backoff_slots").record(
                    backoff_delay / self.backoff.slot_time_s
                )
            self.sim.schedule(
                gap + backoff_delay,
                lambda: self._attempt_head(next_attempt),
                name="mac.retry",
            )
            return
        # Medium free: transmit now.
        duration = self.medium.begin_transmission(self.station_id, frame)
        self.stats.transmissions += 1
        if state.enabled:
            state.metrics.counter("mac.transmissions", protocol="csma_ca").inc()
        self._queue.pop(0)
        if self.on_sent is not None:
            self.on_sent(frame)
        self.sim.schedule(
            duration + self._gap(), self._attempt_head, name="mac.done"
        )


@dataclass
class CsmaCdMac:
    """Wired-Ethernet-style CSMA/CD, the ablation baseline.

    Optimistic: a waiter transmits the moment the medium frees up; a
    detected collision aborts the transmission and triggers backoff.
    (The radio channel reports ``collision_detected`` truthfully, which
    on a real radio would be impossible — that is the point the
    ablation benchmark makes.)
    """

    sim: Simulator
    medium: Medium
    station_id: int
    rng: np.random.Generator
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    poll_interval_s: float = 20e-6
    # Ethernet-style interframe spacing between back-to-back frames;
    # also guarantees the next attempt fires strictly after our own
    # completion event (floating-point addition is not associative).
    interframe_gap_s: float = 10e-6
    on_sent: Optional[Callable[[bytes], None]] = None
    on_dropped: Optional[Callable[[bytes], None]] = None
    stats: MacStats = field(default_factory=MacStats)

    _busy: bool = field(default=False, init=False)
    _queue: list[bytes] = field(default_factory=list, init=False)

    def enqueue(self, frame: bytes) -> None:
        self._queue.append(frame)
        if not self._busy:
            self._busy = True
            self.sim.schedule(0.0, self._attempt_head, name="mac.attempt")

    def _attempt_head(self, attempt: int = 0) -> None:
        if not self._queue:
            self._busy = False
            return
        if self.medium.carrier_busy(self.station_id):
            # Optimistically poll until free, then fire immediately.
            # Jittered so independent stations' polls do not lock into
            # one lattice (their clocks drift in reality).
            self.sim.schedule(
                self.poll_interval_s * (0.5 + self.rng.random()),
                lambda: self._attempt_head(attempt),
                name="mac.poll",
            )
            return
        frame = self._queue[0]
        self.stats.attempts += 1
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter("mac.attempts", protocol="csma_cd").inc()
        duration = self.medium.begin_transmission(self.station_id, frame)
        # Collision window: check shortly after the transmission starts.
        self.sim.schedule(
            self.poll_interval_s,
            lambda: self._after_start(frame, duration, attempt),
            name="mac.cd-check",
        )

    def _after_start(self, frame: bytes, duration: float, attempt: int) -> None:
        state = _obs.STATE
        if self.medium.collision_detected(self.station_id):
            self.medium.abort_transmission(self.station_id)
            self.stats.collisions += 1
            if state.enabled:
                state.metrics.counter("mac.collisions", protocol="csma_cd").inc()
            next_attempt = attempt + 1
            if self.backoff.exhausted(next_attempt):
                self.stats.drops += 1
                if state.enabled:
                    state.metrics.counter(
                        "mac.drops", reason="backoff_exhausted"
                    ).inc()
                self._queue.pop(0)
                if self.on_dropped is not None:
                    self.on_dropped(frame)
                self.sim.schedule(0.0, self._attempt_head, name="mac.next")
                return
            delay = self.backoff.delay(next_attempt, self.rng)
            if state.enabled:
                state.metrics.histogram("mac.backoff_slots").record(
                    delay / self.backoff.slot_time_s
                )
            self.sim.schedule(
                delay, lambda: self._attempt_head(next_attempt), name="mac.retry"
            )
            return
        # No collision: let the transmission complete.
        self.stats.transmissions += 1
        if state.enabled:
            state.metrics.counter("mac.transmissions", protocol="csma_cd").inc()
        self._queue.pop(0)
        if self.on_sent is not None:
            self.on_sent(frame)
        remaining = max(0.0, duration - self.poll_interval_s)
        # Jittered interframe spacing (clock drift) — without it,
        # saturated blind-CD stations phase-lock into a permanent
        # every-frame collision.
        gap = self.interframe_gap_s * (0.5 + 2.0 * self.rng.random())
        self.sim.schedule(
            remaining + gap, self._attempt_head, name="mac.done"
        )
