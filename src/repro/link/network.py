"""Scenario wiring helpers: assemble stations + MACs on a channel.

The experiment modules mostly use the contention-free fast path; the
MAC experiments wire their own exotic topologies.  This module carries
the common recipes so examples and downstream users don't repeat the
boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.interference.base import InterferenceSource
from repro.link.channel import RadioChannel
from repro.link.station import LinkStation
from repro.mac.csma import CsmaCaMac
from repro.phy.modem import ModemConfig
from repro.simkit.simulator import Simulator


@dataclass
class WaveLanNetwork:
    """A simulator + channel + stations bundle.

    Build with :meth:`create`, add stations with :meth:`add_station`
    (each gets a CSMA/CA MAC), then drive the simulator directly or via
    :meth:`run_for`.
    """

    sim: Simulator
    channel: RadioChannel
    stations: dict[int, LinkStation] = field(default_factory=dict)
    macs: dict[int, CsmaCaMac] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        propagation: PropagationModel,
        seed: int = 0,
        interference: Sequence[InterferenceSource] = (),
    ) -> "WaveLanNetwork":
        sim = Simulator(seed=seed)
        channel = RadioChannel(sim, propagation, interference_sources=interference)
        return cls(sim=sim, channel=channel)

    def add_station(
        self,
        station_id: int,
        position: Point,
        modem_config: Optional[ModemConfig] = None,
        with_mac: bool = True,
    ) -> LinkStation:
        """Create, register, and (optionally) MAC-equip one station."""
        station = LinkStation.tracing_station(station_id, position, modem_config)
        self.channel.add_station(station)
        self.stations[station_id] = station
        if with_mac:
            self.macs[station_id] = CsmaCaMac(
                self.sim,
                self.channel,
                station_id,
                self.sim.rng.stream(f"mac.{station_id}"),
            )
        return station

    def send(self, station_id: int, frame: bytes) -> None:
        """Queue a frame on a station's MAC."""
        self.macs[station_id].enqueue(frame)

    def saturate(self, station_id: int, frame: bytes, depth: int = 4) -> None:
        """Keep a station's queue refilled forever (a hostile/jamming
        transmitter, the paper's raised-threshold configuration)."""
        mac = self.macs[station_id]

        def refill() -> None:
            while mac.queue_length < depth:
                mac.enqueue(frame)
            self.sim.schedule(0.002, refill, name=f"saturate.{station_id}")

        self.sim.schedule(0.0, refill, name=f"saturate.{station_id}")

    def run_for(self, duration_s: float) -> int:
        """Advance the simulation by ``duration_s`` seconds."""
        return self.sim.run_until(self.sim.now + duration_s)
