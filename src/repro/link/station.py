"""A WaveLAN host: position + modem + controller + MAC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.environment.geometry import Point
from repro.framing.ethernet import MacAddress
from repro.mac.controller import ControllerConfig, LanController
from repro.obs import runtime as _obs
from repro.phy.modem import ModemConfig, ModemRxStatus, WaveLanModem


@dataclass
class ReceivedFrame:
    """One frame as logged by a station (bytes + modem status + time)."""

    data: bytes
    status: ModemRxStatus
    time: float
    crc_ok: Optional[bool] = None


@dataclass
class LinkStation:
    """One WaveLAN unit in a scenario.

    The MAC is attached by the channel/scenario wiring (it needs the
    simulator and medium); receive logging is always on — stations
    append everything their controller accepts to :attr:`log`, the same
    artifact the paper's modified device driver produced.
    """

    station_id: int
    position: Point
    mac_address: MacAddress
    modem: WaveLanModem = field(default_factory=WaveLanModem)
    controller: Optional[LanController] = None
    on_receive: Optional[Callable[[ReceivedFrame], None]] = None
    log: list[ReceivedFrame] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.controller is None:
            self.controller = LanController(
                ControllerConfig(station_address=self.mac_address)
            )

    @classmethod
    def tracing_station(
        cls,
        station_id: int,
        position: Point,
        modem_config: ModemConfig | None = None,
    ) -> "LinkStation":
        """A station configured like the paper's receiver: promiscuous,
        CRC filtering disabled, everything logged."""
        mac_address = MacAddress.station(station_id)
        controller = LanController(
            ControllerConfig(
                station_address=mac_address,
                promiscuous=True,
                check_crc=False,
            )
        )
        return cls(
            station_id=station_id,
            position=position,
            mac_address=mac_address,
            modem=WaveLanModem(config=modem_config or ModemConfig()),
            controller=controller,
        )

    def deliver(self, frame: ReceivedFrame) -> None:
        """Called by the channel when the controller accepted a frame."""
        self.log.append(frame)
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter("link.frames_logged").inc()
        if self.on_receive is not None:
            self.on_receive(frame)

    @property
    def receive_threshold(self) -> int:
        return self.modem.config.receive_threshold
