"""The shared radio channel.

Implements the :class:`repro.mac.csma.Medium` protocol for the MACs and
the delivery pipeline for receivers:

* **carrier sense** — a station senses carrier when any other ongoing
  transmission's mean level at its position is at or above its receive
  threshold ("raising the threshold ... hide[s] carrier sense from the
  Ethernet chip", paper Section 5.3);
* **delivery** — when a transmission completes, every other station's
  modem pipeline is offered the frame, with co-channel overlap folded in
  as interference samples;
* **capture** — overlap does not equal loss: "we conjecture ... a
  'capture effect' inherent in its multipath-resistant receiver design"
  (Section 7.4).  A desired signal several levels above the sum of
  overlapping energy survives with mild damage; weaker ones are stomped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.environment.propagation import PropagationModel
from repro.interference.base import InterferenceSource
from repro.link.station import LinkStation, ReceivedFrame
from repro.obs import runtime as _obs
from repro.phy.errormodel import InterferenceSample
from repro.phy.modem import DropReason, RxDisposition
from repro.simkit.event import Event
from repro.simkit.simulator import Simulator
from repro.units import level_to_dbm

DATA_RATE_BPS = 2_000_000.0

# Capture-effect calibration: margins are desired-minus-interference in
# level units.  Above CAPTURE_SAFE the overlap is harmless; below
# CAPTURE_FAIL the packet is effectively stomped; in between, damage
# probability interpolates.
CAPTURE_SAFE_MARGIN = 10.0
CAPTURE_FAIL_MARGIN = 0.0


def _logistic(x: float) -> float:
    if x > 60.0:
        return 1.0
    if x < -60.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


@dataclass
class ActiveTransmission:
    """A frame currently on the air."""

    station_id: int
    frame: bytes
    start: float
    end: float
    completion: Event
    aborted: bool = False
    overlapped: bool = False
    overlaps: list["ActiveTransmission"] = field(default_factory=list)


@dataclass
class ChannelStats:
    """Aggregate channel-level accounting for experiments."""

    transmissions: int = 0
    aborted: int = 0
    deliveries: int = 0
    misses: int = 0
    threshold_filtered: int = 0
    quality_filtered: int = 0
    controller_rejected: int = 0


class RadioChannel:
    """The single shared 900 MHz channel all WaveLAN units occupy."""

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        data_rate_bps: float = DATA_RATE_BPS,
        interference_sources: Sequence[InterferenceSource] = (),
        collision_detection_enabled: bool = True,
        carrier_detect_delay_s: float = 15e-6,
    ) -> None:
        self.sim = sim
        self.propagation = propagation
        self.data_rate_bps = data_rate_bps
        self.interference_sources = list(interference_sources)
        # On a real radio, a transmitter cannot hear a collision ("it is
        # difficult to detect collisions in this radio environment") —
        # the MAC ablation disables detection to model that.
        self.collision_detection_enabled = collision_detection_enabled
        # A transmission is not sensed until the receiver's front end
        # has had time to acquire it (propagation + PLL settling); this
        # finite window is what makes post-busy pile-ups possible.
        self.carrier_detect_delay_s = carrier_detect_delay_s
        self.stations: dict[int, LinkStation] = {}
        self.active: dict[int, ActiveTransmission] = {}
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_station(self, station: LinkStation) -> None:
        if station.station_id in self.stations:
            raise ValueError(f"duplicate station id {station.station_id}")
        self.stations[station.station_id] = station

    def airtime(self, frame: bytes) -> float:
        """Seconds needed to transmit ``frame`` at the channel data rate."""
        return len(frame) * 8.0 / self.data_rate_bps

    def _rng(self, name: str) -> np.random.Generator:
        return self.sim.rng.stream(name)

    # ------------------------------------------------------------------
    # Medium protocol (MAC side)
    # ------------------------------------------------------------------
    def carrier_busy(self, station_id: int) -> bool:
        """Does ``station_id`` sense carrier right now?

        Carrier from each ongoing transmission is compared, with the
        per-sample AGC jitter, against the sensing station's receive
        threshold.
        """
        listener = self.stations[station_id]
        rng = self._rng(f"carrier.{station_id}")
        for tx in self.active.values():
            if tx.station_id == station_id or tx.aborted:
                continue
            if self.sim.now - tx.start < self.carrier_detect_delay_s:
                continue  # too new: not yet acquired by the listener
            sender = self.stations[tx.station_id]
            level = self.propagation.mean_level(sender.position, listener.position)
            reading = level + rng.normal(0.0, listener.modem.agc.reading_jitter_sd)
            if reading >= listener.receive_threshold:
                return True
        return False

    def begin_transmission(self, station_id: int, frame: bytes) -> float:
        if station_id in self.active:
            raise RuntimeError(f"station {station_id} is already transmitting")
        duration = self.airtime(frame)
        start = self.sim.now
        tx = ActiveTransmission(
            station_id=station_id,
            frame=frame,
            start=start,
            end=start + duration,
            completion=None,  # type: ignore[arg-type] -- set just below
        )
        # Record overlap both ways for collision detection / capture;
        # references survive the other transmission's completion.
        for other in self.active.values():
            other.overlapped = True
            tx.overlapped = True
            other.overlaps.append(tx)
            tx.overlaps.append(other)
        tx.completion = self.sim.schedule(
            duration, lambda: self._complete(tx), name=f"tx.end.{station_id}"
        )
        self.active[station_id] = tx
        self.stats.transmissions += 1
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter("link.transmissions").inc()
        return duration

    def collision_detected(self, station_id: int) -> bool:
        if not self.collision_detection_enabled:
            return False
        tx = self.active.get(station_id)
        return bool(tx and tx.overlapped)

    def abort_transmission(self, station_id: int) -> None:
        tx = self.active.pop(station_id, None)
        if tx is None:
            return
        tx.aborted = True
        self.sim.cancel(tx.completion)
        self.stats.aborted += 1
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter(
                "link.drops", reason=DropReason.MAC_COLLISION.value
            ).inc()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _overlap_samples(
        self, tx: ActiveTransmission, receiver: LinkStation, signal_level: float
    ) -> list[InterferenceSample]:
        """Convert co-channel overlap into interference samples."""
        samples: list[InterferenceSample] = []
        for other in tx.overlaps:
            if other.station_id == tx.station_id or other.aborted:
                continue
            overlap_s = min(tx.end, other.end) - max(tx.start, other.start)
            if overlap_s <= 0.0:
                continue
            overlap_fraction = overlap_s / (tx.end - tx.start)
            other_station = self.stations[other.station_id]
            interference_level = self.propagation.mean_level(
                other_station.position, receiver.position
            )
            margin = signal_level - interference_level
            # Stomp strength rises as the desired signal's advantage
            # shrinks below the capture-safe margin; above it the
            # receiver's capture makes overlap essentially harmless.
            stomp = _logistic((CAPTURE_SAFE_MARGIN / 2.0 - margin) / 1.5)
            covers_start = other.start <= tx.start
            samples.append(
                InterferenceSample(
                    source_name=f"overlap:{other.station_id}",
                    signal_sample_dbm=level_to_dbm(interference_level),
                    silence_sample_dbm=(
                        level_to_dbm(interference_level)
                        if other.end >= tx.end
                        else None
                    ),
                    jam_ber=2.0e-3 * stomp * overlap_fraction,
                    miss_probability=stomp if covers_start else 0.15 * stomp,
                    truncate_probability=(
                        0.0 if covers_start else stomp * overlap_fraction
                    ),
                    clock_stress=2.0 * stomp,
                    bursty=True,
                )
            )
        return samples

    def _external_samples(
        self, receiver: LinkStation, signal_level: float, rng: np.random.Generator
    ) -> list[InterferenceSample]:
        return [
            source.sample_packet(receiver.position, signal_level, rng)
            for source in self.interference_sources
        ]

    def _complete(self, tx: ActiveTransmission) -> None:
        self.active.pop(tx.station_id, None)
        sender = self.stations[tx.station_id]
        state = _obs.STATE
        for receiver in self.stations.values():
            if receiver.station_id == tx.station_id:
                continue
            if receiver.station_id in self.active:
                # Half duplex: a station that is itself transmitting
                # cannot receive.
                if state.enabled:
                    state.metrics.counter(
                        "link.drops", reason=DropReason.HALF_DUPLEX.value
                    ).inc()
                continue
            self._deliver(tx, sender, receiver)

    def _deliver(
        self, tx: ActiveTransmission, sender: LinkStation, receiver: LinkStation
    ) -> None:
        rng = self._rng(f"rx.{receiver.station_id}")
        signal_level = self.propagation.mean_level(sender.position, receiver.position)
        samples = self._overlap_samples(tx, receiver, signal_level)
        samples.extend(self._external_samples(receiver, signal_level, rng))
        ambient = float(self.propagation.ambient.sample(rng, 1)[0])
        reception = receiver.modem.receive(
            tx.frame, signal_level, ambient, rng, samples
        )
        state = _obs.STATE
        if reception.disposition is not RxDisposition.DELIVERED:
            if reception.disposition is RxDisposition.MISSED:
                self.stats.misses += 1
            elif reception.disposition is RxDisposition.THRESHOLD_FILTERED:
                self.stats.threshold_filtered += 1
            else:
                self.stats.quality_filtered += 1
            if state.enabled:
                reason = DropReason.from_disposition(reception.disposition)
                state.metrics.counter("link.drops", reason=reason.value).inc()
            return
        result = receiver.controller.receive(reception.data)
        if not result.delivered:
            self.stats.controller_rejected += 1
            if state.enabled:
                state.metrics.counter(
                    "link.drops", reason=DropReason.CONTROLLER_REJECTED.value
                ).inc()
            return
        self.stats.deliveries += 1
        if state.enabled:
            state.metrics.counter("link.deliveries").inc()
        receiver.deliver(
            ReceivedFrame(
                data=reception.data,
                status=reception.status,
                time=self.sim.now,
                crc_ok=result.crc_ok,
            )
        )
