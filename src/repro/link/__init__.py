"""The assembled link layer: stations on a shared radio channel.

:class:`~repro.link.channel.RadioChannel` implements the medium the
MACs contend on, delivers completed transmissions through each
receiver's modem pipeline, and converts co-channel overlap into
interference samples (capture effect included).
:class:`~repro.link.station.LinkStation` bundles position, modem,
controller and MAC into one WaveLAN host.
"""

from repro.link.channel import RadioChannel
from repro.link.station import LinkStation, ReceivedFrame

__all__ = ["LinkStation", "RadioChannel", "ReceivedFrame"]
