"""Adaptive FEC rate control driven by the modem's signal metrics.

Section 8: "there were other situations, some plausibly predictable by
signal measurements, in which there is frequent but minor packet
corruption.  Our observations ... argue that the errors we did observe
might be recoverable through a variable FEC mechanism."

The controller maps the per-packet observables the WaveLAN modem already
reports — signal level, silence level, signal quality — to an RCPC rate:

* clean & strong (the common case): the weakest code, because "FEC would
  be useless overhead in most situations";
* marginal signal level (the Figure 2 transition band) or depressed
  quality: step the redundancy up;
* silence level near the signal level (an active wideband interferer,
  the Table 12 signature): strongest code.

The decision uses an exponentially weighted history so a single noisy
reading does not thrash the rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fec.rcpc import RATE_ORDER


@dataclass
class RateDecision:
    """The controller's output for one packet."""

    rate_name: str
    reason: str
    smoothed_level: float
    smoothed_quality: float
    smoothed_silence: float

    @property
    def overhead_fraction(self) -> float:
        transmitted = {"8/9": 9 / 8, "4/5": 10 / 8, "2/3": 12 / 8, "1/2": 2.0}
        return transmitted[self.rate_name] - 1.0


@dataclass
class AdaptiveFecController:
    """Chooses an RCPC rate from smoothed link observations."""

    # Decision thresholds (AGC level units / quality units).
    strong_level: float = 12.0  # at or above: link is comfortably clean
    weak_level: float = 8.5  # below: deep in the Figure-2 error region
    quality_alarm: float = 13.0  # persistent quality depression
    # Silence within this many levels of the signal means an active
    # wideband interferer.
    sinr_alarm_margin: float = 10.0
    # EWMA smoothing factor per observation.
    alpha: float = 0.25

    _level: float = field(default=30.0, init=False)
    _quality: float = field(default=15.0, init=False)
    _silence: float = field(default=3.0, init=False)
    history: list[RateDecision] = field(default_factory=list, init=False)

    def observe(
        self, signal_level: int, silence_level: int, signal_quality: int
    ) -> RateDecision:
        """Fold one packet's status registers in; return the rate to use
        for the *next* transmission."""
        a = self.alpha
        self._level += a * (signal_level - self._level)
        self._quality += a * (signal_quality - self._quality)
        self._silence += a * (silence_level - self._silence)

        sinr_proxy = self._level - self._silence
        if sinr_proxy < self.sinr_alarm_margin and self._quality < 14.5:
            rate, reason = "1/2", "wideband interference (silence near signal)"
        elif self._level < self.weak_level:
            rate, reason = "1/2", "signal in the error region"
        elif self._level < self.strong_level or self._quality < self.quality_alarm:
            rate, reason = "2/3", "marginal signal or depressed quality"
        elif self._quality < 14.5:
            rate, reason = "4/5", "mild quality depression"
        else:
            rate, reason = "8/9", "clean strong link"

        decision = RateDecision(
            rate_name=rate,
            reason=reason,
            smoothed_level=self._level,
            smoothed_quality=self._quality,
            smoothed_silence=self._silence,
        )
        self.history.append(decision)
        return decision

    def rate_index(self, rate_name: str) -> int:
        """Position of a rate in the family (0 = weakest)."""
        return RATE_ORDER.index(rate_name)

    def _ewma_bulk(self, start: float, values: np.ndarray) -> np.ndarray:
        """EWMA of ``values`` seeded at ``start``, one entry per step.

        Chunked closed form: within a chunk of 64 observations,
        ``s_j = d^(j+1) * s0 + a * d^j * cumsum(x_i / d^i)`` with
        ``d = 1 - a`` — the recurrence unrolled, with the chunk bound
        keeping ``d^j`` well away from underflow.  Values agree with
        the iterative :meth:`observe` smoothing to float rounding;
        decisions can differ only when a smoothed value lands within
        ~1e-12 of a threshold (a razor-edge tie).
        """
        a = self.alpha
        d = 1.0 - a
        out = np.empty(values.shape[0], dtype=np.float64)
        s0 = start
        for lo in range(0, values.shape[0], 64):
            chunk = values[lo : lo + 64]
            j = np.arange(chunk.shape[0], dtype=np.float64)
            decay = d**j
            out[lo : lo + chunk.shape[0]] = d * decay * s0 + a * decay * (
                np.cumsum(chunk / decay)
            )
            s0 = out[lo + chunk.shape[0] - 1]
        return out

    def observe_bulk(
        self,
        signal_levels: np.ndarray,
        silence_levels: np.ndarray,
        signal_qualities: np.ndarray,
    ) -> list[str]:
        """Fold a whole trial's status registers in at once.

        Returns the rate name chosen after each packet — the batched
        twin of calling :meth:`observe` per packet, with the decision
        cascade evaluated as one ``np.select`` over the smoothed
        columns.  ``history`` is *not* populated (the per-decision
        dataclasses are the cost this path exists to avoid); the
        smoothed state advances exactly as if every packet had been
        observed, so scalar and bulk calls can be interleaved.
        """
        levels = np.asarray(signal_levels, dtype=np.float64)
        silences = np.asarray(silence_levels, dtype=np.float64)
        qualities = np.asarray(signal_qualities, dtype=np.float64)
        if levels.shape != silences.shape or levels.shape != qualities.shape:
            raise ValueError("status columns must have identical shapes")
        if levels.size == 0:
            return []
        level = self._ewma_bulk(self._level, levels)
        quality = self._ewma_bulk(self._quality, qualities)
        silence = self._ewma_bulk(self._silence, silences)
        self._level = float(level[-1])
        self._quality = float(quality[-1])
        self._silence = float(silence[-1])

        sinr_proxy = level - silence
        choice = np.select(
            [
                (sinr_proxy < self.sinr_alarm_margin) & (quality < 14.5),
                level < self.weak_level,
                (level < self.strong_level) | (quality < self.quality_alarm),
                quality < 14.5,
            ],
            [3, 3, 2, 1],
            default=0,
        )
        # choice indexes RATE_ORDER (0 = weakest "8/9" ... 3 = "1/2").
        return [RATE_ORDER[i] for i in choice]

    def rate_counts_bulk(
        self,
        signal_levels: np.ndarray,
        silence_levels: np.ndarray,
        signal_qualities: np.ndarray,
    ) -> dict[str, int]:
        """Per-rate decision counts for a whole trial's columns."""
        rates = self.observe_bulk(
            signal_levels, silence_levels, signal_qualities
        )
        counts = {name: 0 for name in RATE_ORDER}
        for name in rates:
            counts[name] += 1
        return counts
