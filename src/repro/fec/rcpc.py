"""Rate-compatible punctured convolutional (RCPC) codes.

Hagenauer's construction [19 in the paper]: start from a low-rate
"mother" code and delete (puncture) coded bits according to a family of
puncturing tables, where every higher-rate table's transmitted positions
are a subset of every lower-rate table's — so a transmitter can add
redundancy incrementally and one Viterbi decoder serves every rate
(punctured positions decode as erasures).

The default family is built on the K=7 rate-1/2 mother code with
puncturing period 8, giving rates 8/9, 4/5, 2/3 and 1/2 — redundancy
overheads of 12.5 % to 100 %, the kind of spread the paper quotes from
Hagenauer ("redundancy overhead varying from 12.5 % to 300 %").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.fec.convolutional import ConvolutionalCode
from repro.fec.viterbi import ERASED, viterbi_decode, viterbi_decode_batch

# Puncturing period (information bits per puncturing table column set).
PUNCTURE_PERIOD = 8

# Rate-compatible puncturing tables for the rate-1/2 mother code.
# Row g = generator stream, column t = position within the period; 1 =
# transmit, 0 = puncture.  Each lower-rate pattern is a superset of all
# higher-rate patterns (rate-compatibility).
_PATTERNS: dict[str, np.ndarray] = {
    # 8 info bits -> 9 coded bits
    "8/9": np.array(
        [[1, 1, 1, 1, 1, 1, 1, 1],
         [1, 0, 0, 0, 0, 0, 0, 0]], dtype=np.uint8
    ),
    # 8 info bits -> 10 coded bits
    "4/5": np.array(
        [[1, 1, 1, 1, 1, 1, 1, 1],
         [1, 0, 0, 0, 1, 0, 0, 0]], dtype=np.uint8
    ),
    # 8 info bits -> 12 coded bits
    "2/3": np.array(
        [[1, 1, 1, 1, 1, 1, 1, 1],
         [1, 0, 1, 0, 1, 0, 1, 0]], dtype=np.uint8
    ),
    # 8 info bits -> 16 coded bits (the unpunctured mother code)
    "1/2": np.array(
        [[1, 1, 1, 1, 1, 1, 1, 1],
         [1, 1, 1, 1, 1, 1, 1, 1]], dtype=np.uint8
    ),
}

RATE_ORDER = ("8/9", "4/5", "2/3", "1/2")  # weakest → strongest


@dataclass
class RcpcCodec:
    """Encode/decode at one rate of the family."""

    rate_name: str
    code: ConvolutionalCode = field(default_factory=ConvolutionalCode)

    def __post_init__(self) -> None:
        if self.rate_name not in _PATTERNS:
            raise ValueError(
                f"unknown rate {self.rate_name!r}; choose from {RATE_ORDER}"
            )
        self.pattern = _PATTERNS[self.rate_name]

    @property
    def rate(self) -> Fraction:
        transmitted = int(self.pattern.sum())
        return Fraction(PUNCTURE_PERIOD, transmitted)

    @property
    def overhead(self) -> float:
        """Redundancy overhead: coded/info - 1 (e.g. 1/2 → 1.0 = 100 %)."""
        return float(1.0 / self.rate) - 1.0

    def _mask(self, n_steps: int) -> np.ndarray:
        """Transmit mask over the mother-coded stream for n_steps."""
        periods = -(-n_steps // PUNCTURE_PERIOD)
        tiled = np.tile(self.pattern, (1, periods))[:, :n_steps]
        # Mother stream order is interleaved per step: g0,g1,g0,g1,...
        return tiled.T.reshape(-1).astype(bool)

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Mother-encode then puncture; returns transmitted bits only."""
        mother = self.code.encode(np.asarray(bits, dtype=np.uint8))
        n_steps = len(mother) // self.code.n_outputs
        return mother[self._mask(n_steps)]

    def coded_length(self, info_bits: int) -> int:
        """Transmitted bits for ``info_bits`` information bits."""
        n_steps = info_bits + self.code.tail_bits()
        return int(self._mask(n_steps).sum())

    def _steps_for_length(self, n_received: int) -> int:
        """Trellis steps encoded by a transmitted stream of this length."""
        per_period = int(self.pattern.sum())
        periods, remainder = divmod(n_received, per_period)
        n_steps = periods * PUNCTURE_PERIOD
        if remainder:
            # Partial trailing period: count its transmitted positions.
            count = 0
            extra_steps = 0
            for step in range(PUNCTURE_PERIOD):
                step_bits = int(self.pattern[:, step % PUNCTURE_PERIOD].sum())
                if count + step_bits > remainder:
                    break
                count += step_bits
                extra_steps += 1
            if count != remainder:
                raise ValueError("received length does not align to pattern")
            n_steps += extra_steps
        return n_steps

    def decode(
        self, received: np.ndarray, weights: np.ndarray | None = None
    ) -> np.ndarray:
        """Depuncture (erasures) and Viterbi-decode transmitted bits.

        ``received`` must be exactly the transmitted stream (bit values
        possibly corrupted, but no insertions/deletions).  ``weights``
        optionally assigns each transmitted bit a confidence in [0, 1]
        (see :func:`repro.fec.viterbi.viterbi_decode`).
        """
        received = np.asarray(received, dtype=np.uint8)
        n_steps = self._steps_for_length(len(received))
        mask = self._mask(n_steps)
        mother = np.full(n_steps * self.code.n_outputs, ERASED, dtype=np.uint8)
        mother[mask] = received
        mother_weights = None
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if len(weights) != len(received):
                raise ValueError(
                    f"weights length {len(weights)} != received {len(received)}"
                )
            mother_weights = np.ones(len(mother), dtype=np.float64)
            mother_weights[mask] = weights
        return viterbi_decode(
            self.code, mother, terminated=True, weights=mother_weights
        )

    def decode_batch(
        self, received: np.ndarray, weights: np.ndarray | None = None
    ) -> np.ndarray:
        """Depuncture and decode a ``(batch, length)`` block at once.

        Every row must be the same transmitted length (one puncturing
        mask serves the whole batch); row ``i`` of the result equals
        ``decode(received[i], weights[i])`` bit for bit, via
        :func:`repro.fec.viterbi.viterbi_decode_batch`.
        """
        received = np.asarray(received, dtype=np.uint8)
        if received.ndim != 2:
            raise ValueError(
                f"batched received must be 2-D, got shape {received.shape}"
            )
        batch, length = received.shape
        n_steps = self._steps_for_length(length)
        mask = self._mask(n_steps)
        mother = np.full(
            (batch, n_steps * self.code.n_outputs), ERASED, dtype=np.uint8
        )
        mother[:, mask] = received
        mother_weights = None
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != received.shape:
                raise ValueError(
                    f"weights shape {weights.shape} != received "
                    f"{received.shape}"
                )
            mother_weights = np.ones(mother.shape, dtype=np.float64)
            mother_weights[:, mask] = weights
        return viterbi_decode_batch(
            self.code, mother, terminated=True, weights=mother_weights
        )

    def roundtrip_errors(
        self, bits: np.ndarray, corrupt_positions: np.ndarray
    ) -> int:
        """Encode, flip the given transmitted-bit positions, decode;
        return the number of residual information-bit errors."""
        bits = np.asarray(bits, dtype=np.uint8)
        transmitted = self.encode(bits)
        damaged = transmitted.copy()
        positions = np.asarray(corrupt_positions, dtype=np.int64)
        positions = positions[positions < len(damaged)]
        damaged[positions] ^= 1
        decoded = self.decode(damaged)
        return int((decoded != bits).sum())


@dataclass
class RcpcFamily:
    """The whole rate-compatible family, weakest rate first."""

    code: ConvolutionalCode = field(default_factory=ConvolutionalCode)

    def codec(self, rate_name: str) -> RcpcCodec:
        return RcpcCodec(rate_name, self.code)

    def rates(self) -> list[str]:
        return list(RATE_ORDER)

    def codecs(self) -> list[RcpcCodec]:
        return [self.codec(name) for name in RATE_ORDER]
