"""Hard-decision Viterbi decoding with erasure support.

Classic add-compare-select over the code trellis [Viterbi 1967, Forney
1973 — both cited by the paper].  Received coded bits may be marked as
*erased* (the RCPC depuncturer does this for positions the transmitter
never sent); erased positions contribute no branch metric.

For a rate-1/n code every trellis state has exactly two incoming
branches, so the add-compare-select step vectorizes cleanly over the
2^(K-1) states; :func:`viterbi_decode_batch` additionally vectorizes
over whole *batches* of received blocks, turning the per-step work into
``(batch, states)`` array operations so the Python-level step loop is
paid once per batch instead of once per packet.  The scalar
:func:`viterbi_decode` is the same kernel at batch size 1, so the two
agree bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro import compiled as _compiled
from repro.fec.convolutional import ConvolutionalCode
from repro.obs import runtime as _obs

ERASED = 2  # sentinel value in the received stream: no bit at this slot


def _transition_tables(code: ConvolutionalCode):
    """Static trellis structure shared across decode calls."""
    n_states = code.n_states
    outputs = code.output_table().reshape(-1, code.n_outputs)
    next_state = code.next_state_table().reshape(-1)
    from_state = np.repeat(np.arange(n_states), 2)
    input_bit = np.tile(np.array([0, 1], dtype=np.uint8), n_states)
    # Each next state has exactly two incoming branches (rate 1/n).
    pred_branches = np.empty((n_states, 2), dtype=np.int32)
    fill = np.zeros(n_states, dtype=np.int32)
    for branch, target in enumerate(next_state):
        pred_branches[target, fill[target]] = branch
        fill[target] += 1
    if not (fill == 2).all():
        raise AssertionError("trellis is not two-in-regular")
    # Branches share output symbols: there are only 2**n_outputs
    # distinct patterns, so per-step costs are computed per *pattern*
    # and gathered per branch (the pattern-cost trick).
    place = 1 << np.arange(code.n_outputs - 1, -1, -1)
    branch_pattern = (outputs.astype(np.int64) * place).sum(axis=1)
    all_patterns = (
        (np.arange(1 << code.n_outputs)[:, None] // place[None, :]) % 2
    ).astype(np.uint8)
    return (
        outputs,
        from_state,
        input_bit,
        pred_branches,
        branch_pattern,
        all_patterns,
    )


_TABLE_CACHE: dict[tuple[int, tuple[int, ...]], tuple] = {}


def _cached_tables(code: ConvolutionalCode):
    key = (code.constraint_length, tuple(code.generators))
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = _transition_tables(code)
        _TABLE_CACHE[key] = tables
    return tables


def viterbi_decode(
    code: ConvolutionalCode,
    received: np.ndarray,
    terminated: bool = True,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Maximum-likelihood decode of ``received`` hard bits.

    ``received`` has ``code.n_outputs`` entries per trellis step, each
    0, 1, or :data:`ERASED`.  ``weights``, when given, assigns each
    received position a confidence in [0, 1]: a disagreement at a
    low-weight position costs proportionally less branch metric.  This
    is poor-man's soft decision — a receiver that *knows* which spans
    an interference burst covered (the WaveLAN modem does, from its AGC
    samples) can down-weight them without discarding them outright.
    Returns the decoded information bits (flush bits stripped when
    ``terminated``).
    """
    state = _obs.STATE
    if state.profiling:
        with state.metrics.timer("profile.viterbi_decode").time():
            return _decode_impl(code, received, terminated, weights)
    return _decode_impl(code, received, terminated, weights)


def viterbi_decode_batch(
    code: ConvolutionalCode,
    received: np.ndarray,
    terminated: bool = True,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Decode a ``(batch, length)`` block of received streams at once.

    Row ``i`` of the result equals ``viterbi_decode(code, received[i],
    terminated, weights[i])`` bit for bit — the branch metrics are
    accumulated in the same floating-point order — but the trellis step
    loop runs over ``(batch, states)`` arrays, amortizing the
    Python-level per-step cost across the whole batch.  ``weights``
    (optional) must have the same shape as ``received``; a row of ones
    is exactly equivalent to no weights.
    """
    state = _obs.STATE
    if state.profiling:
        with state.metrics.timer("profile.viterbi_decode_batch").time():
            return _decode_batch_impl(code, received, terminated, weights)
    return _decode_batch_impl(code, received, terminated, weights)


def _decode_impl(
    code: ConvolutionalCode,
    received: np.ndarray,
    terminated: bool,
    weights: np.ndarray | None,
) -> np.ndarray:
    received = np.asarray(received, dtype=np.uint8)
    if received.ndim != 1:
        raise ValueError(f"received must be 1-D, got shape {received.shape}")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != received.shape:
            raise ValueError(
                f"weights shape {weights.shape} != received {received.shape}"
            )
        weights = weights[None, :]
    return _decode_batch_impl(code, received[None, :], terminated, weights)[0]


def _decode_batch_impl(
    code: ConvolutionalCode,
    received: np.ndarray,
    terminated: bool,
    weights: np.ndarray | None,
) -> np.ndarray:
    received = np.asarray(received, dtype=np.uint8)
    if received.ndim != 2:
        raise ValueError(
            f"batched received must be 2-D, got shape {received.shape}"
        )
    batch, length = received.shape
    n_out = code.n_outputs
    if length % n_out != 0:
        raise ValueError(f"received length {length} not a multiple of {n_out}")
    n_steps = length // n_out
    if n_steps == 0 or batch == 0:
        return np.empty((batch, 0), dtype=np.uint8)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != received.shape:
            raise ValueError(
                f"weights shape {weights.shape} != received {received.shape}"
            )
        weights = weights.reshape(batch, n_steps, n_out)

    (
        _outputs,
        from_state,
        input_bit,
        pred_branches,
        branch_pattern,
        all_patterns,
    ) = _cached_tables(code)

    symbols = received.reshape(batch, n_steps, n_out)
    # Per-step costs for every possible output pattern:
    # cost_pattern[b, step, p] = (weighted) count of usable symbol bits
    # differing from pattern p.  Branch costs are gathers from this —
    # identical floats to the per-branch computation (same terms, same
    # summation order over the symbol axis).
    usable = symbols != ERASED
    diffs = all_patterns[None, None, :, :] != symbols[:, :, None, :]
    effective = (diffs & usable[:, :, None, :]).astype(np.float64)
    if weights is not None:
        effective *= weights[:, :, None, :]
    cost_pattern = effective.sum(axis=3)

    if _compiled.compiled_enabled():
        decoded = _compiled.viterbi_batch(
            cost_pattern,
            branch_pattern,
            from_state,
            input_bit,
            pred_branches,
            terminated,
        )
    else:
        decoded = _acs_numpy(
            cost_pattern,
            branch_pattern,
            from_state,
            input_bit,
            pred_branches,
            terminated,
        )

    if terminated:
        tail = code.tail_bits()
        if tail:
            decoded = decoded[:, :-tail]
    return decoded


def _acs_numpy(
    cost_pattern: np.ndarray,
    branch_pattern: np.ndarray,
    from_state: np.ndarray,
    input_bit: np.ndarray,
    pred_branches: np.ndarray,
    terminated: bool,
) -> np.ndarray:
    """Numpy reference add-compare-select + traceback (all batch rows).

    The executable reference for :func:`repro.compiled.viterbi_batch`;
    the compiled twin must stay byte-identical to this.
    """
    batch, n_steps, _ = cost_pattern.shape
    n_states = pred_branches.shape[0]
    state_index = np.arange(n_states)

    big = np.float64(1e9)
    metrics = np.full((batch, n_states), big)
    metrics[:, 0] = 0.0  # encoder starts in state 0
    traceback = np.zeros((batch, n_steps, n_states), dtype=np.int32)

    for step in range(n_steps):
        candidate = (
            metrics[:, from_state] + cost_pattern[:, step, branch_pattern]
        )
        two_way = candidate[:, pred_branches]  # (batch, n_states, 2)
        choice = two_way[..., 1] < two_way[..., 0]
        traceback[:, step, :] = pred_branches[
            state_index, choice.astype(np.int8)
        ]
        metrics = np.where(choice, two_way[..., 1], two_way[..., 0])

    if terminated:
        state = np.zeros(batch, dtype=np.int64)
    else:
        state = np.argmin(metrics, axis=1)  # first minimum, like scalar
    decoded = np.empty((batch, n_steps), dtype=np.uint8)
    rows = np.arange(batch)
    for step in range(n_steps - 1, -1, -1):
        branch = traceback[rows, step, state]
        decoded[:, step] = input_bit[branch]
        state = from_state[branch]
    return decoded
