"""Hard-decision Viterbi decoding with erasure support.

Classic add-compare-select over the code trellis [Viterbi 1967, Forney
1973 — both cited by the paper].  Received coded bits may be marked as
*erased* (the RCPC depuncturer does this for positions the transmitter
never sent); erased positions contribute no branch metric.

For a rate-1/n code every trellis state has exactly two incoming
branches, so the add-compare-select step vectorizes cleanly over the
2^(K-1) states; decoding a full 8192-bit packet body takes tens of
milliseconds at K=7.
"""

from __future__ import annotations

import numpy as np

from repro.fec.convolutional import ConvolutionalCode
from repro.obs import runtime as _obs

ERASED = 2  # sentinel value in the received stream: no bit at this slot


def _transition_tables(code: ConvolutionalCode):
    """Static trellis structure shared across decode calls."""
    n_states = code.n_states
    outputs = code.output_table().reshape(-1, code.n_outputs)
    next_state = code.next_state_table().reshape(-1)
    from_state = np.repeat(np.arange(n_states), 2)
    input_bit = np.tile(np.array([0, 1], dtype=np.uint8), n_states)
    # Each next state has exactly two incoming branches (rate 1/n).
    pred_branches = np.empty((n_states, 2), dtype=np.int32)
    fill = np.zeros(n_states, dtype=np.int32)
    for branch, target in enumerate(next_state):
        pred_branches[target, fill[target]] = branch
        fill[target] += 1
    if not (fill == 2).all():
        raise AssertionError("trellis is not two-in-regular")
    return outputs, from_state, input_bit, pred_branches


_TABLE_CACHE: dict[tuple[int, tuple[int, ...]], tuple] = {}


def _cached_tables(code: ConvolutionalCode):
    key = (code.constraint_length, tuple(code.generators))
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = _transition_tables(code)
        _TABLE_CACHE[key] = tables
    return tables


def viterbi_decode(
    code: ConvolutionalCode,
    received: np.ndarray,
    terminated: bool = True,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Maximum-likelihood decode of ``received`` hard bits.

    ``received`` has ``code.n_outputs`` entries per trellis step, each
    0, 1, or :data:`ERASED`.  ``weights``, when given, assigns each
    received position a confidence in [0, 1]: a disagreement at a
    low-weight position costs proportionally less branch metric.  This
    is poor-man's soft decision — a receiver that *knows* which spans
    an interference burst covered (the WaveLAN modem does, from its AGC
    samples) can down-weight them without discarding them outright.
    Returns the decoded information bits (flush bits stripped when
    ``terminated``).
    """
    state = _obs.STATE
    if state.profiling:
        with state.metrics.timer("profile.viterbi_decode").time():
            return _decode_impl(code, received, terminated, weights)
    return _decode_impl(code, received, terminated, weights)


def _decode_impl(
    code: ConvolutionalCode,
    received: np.ndarray,
    terminated: bool,
    weights: np.ndarray | None,
) -> np.ndarray:
    received = np.asarray(received, dtype=np.uint8)
    n_out = code.n_outputs
    if len(received) % n_out != 0:
        raise ValueError(
            f"received length {len(received)} not a multiple of {n_out}"
        )
    n_steps = len(received) // n_out
    if n_steps == 0:
        return np.empty(0, dtype=np.uint8)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != received.shape:
            raise ValueError(
                f"weights shape {weights.shape} != received {received.shape}"
            )

    outputs, from_state, input_bit, pred_branches = _cached_tables(code)
    n_states = code.n_states
    state_index = np.arange(n_states)

    big = np.float64(1e9)
    metrics = np.full(n_states, big)
    metrics[0] = 0.0  # encoder starts in state 0
    traceback = np.zeros((n_steps, n_states), dtype=np.int32)

    symbols = received.reshape(n_steps, n_out)
    # Precompute per-step branch costs in one vectorized pass:
    # cost[step, branch] = (weighted) count of usable symbol bits differing.
    usable = symbols != ERASED  # (n_steps, n_out)
    diffs = outputs[None, :, :] != symbols[:, None, :]  # (steps, branches, n_out)
    effective = (diffs & usable[:, None, :]).astype(np.float64)
    if weights is not None:
        effective *= weights.reshape(n_steps, n_out)[:, None, :]
    costs = effective.sum(axis=2)

    for step in range(n_steps):
        candidate = metrics[from_state] + costs[step]
        two_way = candidate[pred_branches]  # (n_states, 2)
        choice = two_way[:, 1] < two_way[:, 0]
        best_branch = pred_branches[state_index, choice.astype(np.int8)]
        metrics = np.where(choice, two_way[:, 1], two_way[:, 0])
        traceback[step] = best_branch

    state = 0 if terminated else int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        branch = traceback[step, state]
        decoded[step] = input_bit[branch]
        state = from_state[branch]

    if terminated:
        tail = code.tail_bits()
        if tail:
            decoded = decoded[:-tail]
    return decoded
