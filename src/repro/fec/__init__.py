"""Variable forward error correction — the paper's Section-8 proposal.

"Our observations, especially the spread spectrum phone results in
Section 7.3, argue that the errors we did observe might be recoverable
through a variable FEC mechanism."  The paper points at Hagenauer's
rate-compatible punctured convolutional (RCPC) codes decoded with the
Viterbi algorithm; this package implements that stack from scratch:

* :mod:`~repro.fec.convolutional` — the K=7 rate-1/2 convolutional
  encoder (the standard (171, 133) octal generators the Qualcomm parts
  the paper cites implement).
* :mod:`~repro.fec.viterbi` — hard-decision Viterbi decoding with
  erasure support (punctured positions carry no metric).
* :mod:`~repro.fec.rcpc` — a rate-compatible puncturing family from
  rate 8/9 down to the 1/2 mother code.
* :mod:`~repro.fec.interleave` — block interleaving, because the
  channel's errors are bursty (Section 6.2's multi-bit corruption).
* :mod:`~repro.fec.adaptive` — a rate controller driven by the modem's
  per-packet signal metrics.
"""

from repro.fec.adaptive import AdaptiveFecController, RateDecision
from repro.fec.convolutional import ConvolutionalCode
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RcpcCodec, RcpcFamily
from repro.fec.viterbi import viterbi_decode

__all__ = [
    "AdaptiveFecController",
    "BlockInterleaver",
    "ConvolutionalCode",
    "RateDecision",
    "RcpcCodec",
    "RcpcFamily",
    "viterbi_decode",
]
