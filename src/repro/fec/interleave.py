"""Block interleaving.

The channel's corruption is bursty (the multi-bit syndromes of Section
6.2 and the spread-spectrum-phone clumps of Section 7.3), and
convolutional codes handle scattered errors far better than bursts.  A
rows×columns block interleaver writes the coded stream row-wise and
transmits column-wise, spreading a burst of b adjacent channel errors at
least ``rows`` positions apart after deinterleaving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BlockInterleaver:
    """A rows×columns block interleaver (with padding for partial blocks)."""

    rows: int = 16
    columns: int = 64

    @property
    def block_size(self) -> int:
        return self.rows * self.columns

    def _padded(self, bits: np.ndarray) -> tuple[np.ndarray, int]:
        bits = np.asarray(bits, dtype=np.uint8)
        pad = (-len(bits)) % self.block_size
        if pad:
            bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        return bits, pad

    def interleave(self, bits: np.ndarray) -> np.ndarray:
        """Permute: write row-wise, read column-wise (per block).

        Input shorter than a whole number of blocks is zero-padded, so
        the output length is rounded up to a block multiple; pass the
        original length to :meth:`deinterleave` to strip the pad.
        """
        padded, _ = self._padded(bits)
        blocks = padded.reshape(-1, self.rows, self.columns)
        return blocks.transpose(0, 2, 1).reshape(-1)

    def deinterleave(
        self, bits: np.ndarray, original_length: int | None = None
    ) -> np.ndarray:
        """Inverse permutation; strips padding down to ``original_length``."""
        bits = np.asarray(bits, dtype=np.uint8)
        if len(bits) % self.block_size != 0:
            raise ValueError(
                f"interleaved length {len(bits)} is not a block multiple"
            )
        blocks = bits.reshape(-1, self.columns, self.rows)
        out = blocks.transpose(0, 2, 1).reshape(-1)
        if original_length is not None:
            out = out[:original_length]
        return out

    def permutation(self, length: int) -> np.ndarray:
        """The wire-order permutation for a stream of ``length`` bits.

        ``perm[i]`` is the source index transmitted in wire slot ``i``.
        Pad positions of partial blocks are skipped, so the on-air
        stream has exactly ``length`` bits — the channel must see the
        same exposure with or without interleaving.
        """
        padded = length + (-length) % self.block_size
        indices = np.arange(padded, dtype=np.int64)
        blocks = indices.reshape(-1, self.rows, self.columns)
        wire_order = blocks.transpose(0, 2, 1).reshape(-1)
        return wire_order[wire_order < length]

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """Length-preserving interleave: reorder ``bits`` into wire order."""
        bits = np.asarray(bits)
        return bits[self.permutation(len(bits))]

    def unscramble(self, bits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`scramble`."""
        bits = np.asarray(bits)
        out = np.empty_like(bits)
        out[self.permutation(len(bits))] = bits
        return out

    def burst_spread(self) -> int:
        """Separation, in the deinterleaved stream, of two bits that were
        adjacent on the channel (the interleaver's design guarantee):
        consecutive channel bits come from successive rows of the same
        column, which sit ``columns`` apart in row-major order."""
        return self.columns
