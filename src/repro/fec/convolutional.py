"""Rate-1/2 convolutional encoding.

The default code is the ubiquitous constraint-length-7 code with octal
generators (171, 133) — the "k=7" code of the Qualcomm Q1650 decoder the
paper cites [31].  The shift register holds the newest bit in the MSB;
the encoder state is the K-1 older bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _parity_table() -> np.ndarray:
    """Parity of every 16-bit value (for vectorized output computation)."""
    values = np.arange(1 << 16, dtype=np.uint32)
    parity = values.copy()
    for shift in (8, 4, 2, 1):
        parity ^= parity >> shift
    return (parity & 1).astype(np.uint8)


_PARITY = _parity_table()


def parity(value: int) -> int:
    """Parity (XOR of all bits) of a non-negative integer."""
    result = 0
    while value:
        result ^= value & 1
        value >>= 1
    return result


@dataclass
class ConvolutionalCode:
    """A rate-1/n convolutional code defined by its generators."""

    constraint_length: int = 7
    generators: tuple[int, ...] = (0o171, 0o133)

    # Lookup tables built once per instance.
    _outputs: np.ndarray = field(init=False, repr=False)
    _next_state: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        k = self.constraint_length
        if k < 2 or k > 16:
            raise ValueError(f"constraint length {k} out of supported range")
        for g in self.generators:
            if g >= (1 << k):
                raise ValueError(f"generator {g:o} wider than constraint length")
        n_states = 1 << (k - 1)
        outputs = np.zeros((n_states, 2, self.n_outputs), dtype=np.uint8)
        next_state = np.zeros((n_states, 2), dtype=np.int32)
        for state in range(n_states):
            for bit in (0, 1):
                register = (bit << (k - 1)) | state
                for gi, g in enumerate(self.generators):
                    outputs[state, bit, gi] = _PARITY[register & g]
                next_state[state, bit] = register >> 1
        self._outputs = outputs
        self._next_state = next_state

    @property
    def n_outputs(self) -> int:
        return len(self.generators)

    @property
    def n_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    @property
    def rate(self) -> float:
        return 1.0 / self.n_outputs

    def output_table(self) -> np.ndarray:
        """(state, bit) → coded output bits; shared with the decoder."""
        return self._outputs

    def next_state_table(self) -> np.ndarray:
        """(state, bit) → next state; shared with the decoder."""
        return self._next_state

    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode a bit array; appends K-1 flush bits when ``terminate``.

        Returns the coded bit stream (length n_outputs per input bit).
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if terminate:
            bits = np.concatenate(
                [bits, np.zeros(self.constraint_length - 1, dtype=np.uint8)]
            )
        coded = np.empty(len(bits) * self.n_outputs, dtype=np.uint8)
        state = 0
        outputs = self._outputs
        next_state = self._next_state
        cursor = 0
        for bit in bits:
            coded[cursor : cursor + self.n_outputs] = outputs[state, bit]
            state = next_state[state, bit]
            cursor += self.n_outputs
        return coded

    def tail_bits(self) -> int:
        """Number of flush bits a terminated encoding appends."""
        return self.constraint_length - 1
