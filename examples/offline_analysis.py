#!/usr/bin/env python3
"""The paper's capture-then-analyze-offline workflow, end to end.

1. Run a live capture on a marginal link (the modified-driver part).
2. Save the raw trace to disk and throw the simulator away.
3. Reload the trace and run the *entire* analysis offline: matching,
   classification, Table-1 metrics, burst characterization.
4. Fit a Gilbert-Elliott channel to the measured burst structure and
   use it to pick the cheapest RCPC rate that would survive this link.

Everything after step 2 consumes only the trace file — the same
pipeline would run on a trace converted from real WaveLAN hardware.

Run:  python examples/offline_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import TrialConfig, run_fast_trial
from repro.analysis import analyze_trial, burst_statistics, classify_trace
from repro.analysis.tables import render_metrics_table
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RATE_ORDER, RcpcCodec
from repro.trace.persist import load_trace, save_trace


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="wavelan-trace-"))
    # .wlt2 selects the v2 columnar binary store: memory-mapped,
    # zero-copy analysis.  Swap the suffix for .jsonl.gz to get the
    # greppable v1 interchange format — load_trace auto-detects either
    # from the file's leading bytes.
    trace_path = workdir / "marginal-link.wlt2"

    # ------------------------------------------------------------------
    print("1. capturing 4,000 packets on a marginal link (level ~7.2)...")
    output = run_fast_trial(
        TrialConfig(name="marginal-link", packets=4_000, mean_level=7.2, seed=77)
    )

    print(f"2. saving the raw trace to {trace_path}")
    save_trace(output.trace, trace_path)
    size_kb = trace_path.stat().st_size / 1024
    print(f"   {output.trace.packets_received} records, {size_kb:.0f} KiB columnar\n")
    del output  # the simulator's ground truth is gone now

    # ------------------------------------------------------------------
    print("3. reloading (memory-mapped) and analyzing offline:")
    trace = load_trace(trace_path)
    metrics = analyze_trial(trace)
    print(render_metrics_table([metrics]))

    classified = classify_trace(trace)
    stats = burst_statistics(classified)
    print(f"\n   burst structure: {stats.burst_count} bursts, "
          f"mean span {stats.mean_burst_span_bits:.1f} bits, "
          f"mean {stats.mean_burst_errors:.1f} errors/burst "
          f"(burstiness {stats.burstiness_ratio:.1f}; 1.0 would be i.i.d.)")
    print(f"   measured BER {stats.mean_ber:.2e}")

    # ------------------------------------------------------------------
    print("\n4. fitting a Gilbert-Elliott channel and picking an FEC rate:")
    channel = stats.fitted_gilbert_elliott()
    print(f"   fitted GE: P(g->b)={channel.p_good_to_bad:.2e}, "
          f"P(b->g)={channel.p_bad_to_good:.2e}, "
          f"mean burst {channel.mean_burst_bits:.1f} bits")

    interleaver = BlockInterleaver(32, 64)
    rng = np.random.default_rng(0)
    info = rng.integers(0, 2, 1024).astype(np.uint8)
    print(f"\n   {'rate':>5} | {'overhead':>8} | {'recovery on fitted channel':>26}")
    chosen = None
    for rate_name in RATE_ORDER:  # weakest (cheapest) first
        codec = RcpcCodec(rate_name)
        transmitted = codec.encode(info)
        recovered = 0
        trials = 200
        for _ in range(trials):
            stream = interleaver.scramble(transmitted).copy()
            flips = channel.error_positions(len(transmitted), rng)
            stream[flips] ^= 1
            decoded = codec.decode(interleaver.unscramble(stream))
            if np.array_equal(decoded, info):
                recovered += 1
        fraction = recovered / trials
        print(f"   {rate_name:>5} | {100 * codec.overhead:7.1f}% | "
              f"{100 * fraction:25.1f}%")
        if fraction > 0.99 and chosen is None:
            chosen = (rate_name, codec.overhead)
    if chosen:
        print(f"\n   -> cheapest rate surviving this link: {chosen[0]} "
              f"({100 * chosen[1]:.1f}% overhead)")
    else:
        print("\n   -> no rate in the family fully survives; "
              "fall back to ARQ or wait for a better link")


if __name__ == "__main__":
    main()
