#!/usr/bin/env python3
"""Survey every interference source the paper tested (Section 7).

Places one WaveLAN pair 20 ft apart and subjects it, one source at a
time, to the paper's menagerie: a 2 W amateur transmitter touching the
modem, a microwave oven, narrowband FM cordless phones, spread-spectrum
cordless phones near and far, and a hostile competing WaveLAN unit —
then prints a one-line verdict per source, mirroring the paper's
Section 7 narrative.

Run:  python examples/interference_survey.py
"""

from repro import TrialConfig, analyze_trial, classify_trace, run_fast_trial
from repro.analysis.signalstats import stats_for_packets
from repro.environment import Point, PropagationModel
from repro.phy.modem import ModemConfig
from repro.interference import (
    AmateurRadioTransmitter,
    CompetingWaveLanTransmitter,
    MicrowaveOven,
    NarrowbandPhonePair,
    SpreadSpectrumPhonePair,
)

TX = Point(20.0, 0.0)
RX = Point(0.0, 0.0)
TOUCHING = Point(0.3, 0.0)
ACROSS_ROOM = Point(0.0, 14.0)
PACKETS = 1_440


def survey(name: str, sources, seed: int, receive_threshold: int = 3) -> None:
    propagation = PropagationModel.calibrated(level=27.0, at_distance_ft=20.0)
    output = run_fast_trial(
        TrialConfig(
            name=name,
            packets=PACKETS,
            seed=seed,
            propagation=propagation,
            tx_position=TX,
            rx_position=RX,
            interference=sources,
            modem_config=ModemConfig(receive_threshold=receive_threshold),
        )
    )
    metrics = analyze_trial(output.trace)
    classified = classify_trace(output.trace)
    stats = stats_for_packets(name, classified.test_packets)
    silence = stats.silence.mean if stats.silence else 0.0
    received = max(1, metrics.packets_received)
    print(f"{name:<38} loss {metrics.packet_loss_percent:5.1f}%  "
          f"trunc {100 * metrics.packets_truncated / received:5.1f}%  "
          f"dmg {100 * metrics.body_damaged_packets / received:5.1f}%  "
          f"silence {silence:5.1f}")


def main() -> None:
    print(f"{'source':<38} {'loss':>10} {'trunc':>7} {'dmg':>9} {'silence':>8}")
    print("-" * 80)

    survey("(quiet baseline)", [], seed=1)
    survey(
        "2W 144MHz ham TX, touching",
        [AmateurRadioTransmitter(TOUCHING)],
        seed=2,
    )
    survey(
        "microwave oven, touching (900MHz rx)",
        [MicrowaveOven(TOUCHING)],
        seed=3,
    )
    survey(
        "FM cordless phones, clustered",
        [NarrowbandPhonePair(TOUCHING, TOUCHING)],
        seed=4,
    )
    survey(
        "SS cordless phone, base near",
        [SpreadSpectrumPhonePair(handset_position=ACROSS_ROOM,
                                 base_position=TOUCHING,
                                 base_level_at_1ft=31.5)],
        seed=5,
    )
    survey(
        "SS cordless phone, all units ~20ft",
        [SpreadSpectrumPhonePair(handset_position=Point(2.0, 21.0),
                                 base_position=Point(2.0, 20.0),
                                 base_level_at_1ft=31.5)],
        seed=6,
    )
    # The hostile WaveLAN sits two rooms away: its carrier reads ~13.5
    # here — above the default threshold (disaster) but maskable at 25.
    hostile_position = Point(45.0, 0.0)
    hostile_power = 30.0
    survey(
        "competing WaveLAN, masked (thr 25)",
        [CompetingWaveLanTransmitter(hostile_position,
                                     level_at_1ft=hostile_power,
                                     victim_receive_threshold=25)],
        seed=7,
        receive_threshold=25,
    )
    survey(
        "competing WaveLAN, unmasked (thr 3)",
        [CompetingWaveLanTransmitter(hostile_position,
                                     level_at_1ft=hostile_power,
                                     victim_receive_threshold=3)],
        seed=8,
        receive_threshold=3,
    )

    print("\nThe paper's Section 7 in one table: out-of-band power and "
          "narrowband energy are shrugged off (DSSS processing gain), "
          "in-band spread-spectrum sources are devastating at close "
          "range, and a hostile WaveLAN is fatal unless the receive "
          "threshold masks it.")


if __name__ == "__main__":
    main()
