#!/usr/bin/env python3
"""Pseudo-cell planning with the receive threshold (Sections 5.3, 6, 8).

The paper asks whether WaveLAN's receive threshold can carve an indoor
space into pseudo-cells: nearby stations must stay connected, distant
ones must be fully excluded, and the carrier of the distant cell must
not freeze the local one.  Its conclusion: the threshold works but
needs a margin of several units, so "it will typically require multiple
walls to safely isolate two transmitters", leaving awkward "border
zones".

This example plans a two-cell office floor: it sweeps the inter-cell
wall count, finds the threshold window that isolates the cells, and
maps the border zone where a mobile client disrupts both.

Run:  python examples/pseudo_cell_planning.py
"""

from repro import TrialConfig, analyze_trial, run_fast_trial
from repro.environment import (
    CONCRETE_BLOCK_WALL,
    FloorPlan,
    Point,
    PropagationModel,
    Wall,
)
from repro.phy.modem import ModemConfig

CELL_A_STATION = Point(0.0, 0.0)
CELL_B_STATION = Point(18.0, 0.0)
IN_CELL_DISTANCE_FT = 8.0
PACKETS = 1_500


def build_floor(walls_between: int) -> FloorPlan:
    """Two adjacent offices 18 ft apart with N concrete walls between."""
    plan = FloorPlan(name=f"{walls_between}-wall floor")
    for i in range(walls_between):
        x = 10.0 + i * (5.0 / max(1, walls_between - 1)) if walls_between > 1 else 12.0
        plan.add_wall(Wall.between(x, -10.0, x, 10.0, CONCRETE_BLOCK_WALL))
    return plan


def delivery_rate(
    propagation: PropagationModel, tx: Point, rx: Point, threshold: int, seed: int
) -> float:
    output = run_fast_trial(
        TrialConfig(
            name="cell-probe",
            packets=PACKETS,
            seed=seed,
            propagation=propagation,
            tx_position=tx,
            rx_position=rx,
            modem_config=ModemConfig(receive_threshold=threshold),
        )
    )
    metrics = analyze_trial(output.trace)
    return 1.0 - metrics.packet_loss_fraction


def main() -> None:
    print("Pseudo-cell planning: two adjacent offices 18 ft apart, "
          f"in-cell links {IN_CELL_DISTANCE_FT:.0f} ft\n")

    for walls in (0, 1, 2, 3):
        propagation = PropagationModel.office(build_floor(walls))
        in_cell_level = propagation.mean_level(
            CELL_A_STATION, Point(IN_CELL_DISTANCE_FT, 0.0)
        )
        cross_level = propagation.mean_level(CELL_A_STATION, CELL_B_STATION)
        separation = in_cell_level - cross_level
        print(f"{walls} concrete wall(s): in-cell level {in_cell_level:.1f}, "
              f"cross-cell level {cross_level:.1f} "
              f"(separation {separation:.1f} units)")

        # Find thresholds that keep the in-cell link while excluding the
        # far cell completely.
        usable = []
        for threshold in range(3, 34):
            keep = delivery_rate(
                propagation,
                Point(IN_CELL_DISTANCE_FT, 0.0),
                CELL_A_STATION,
                threshold,
                seed=walls * 100 + threshold,
            )
            exclude = delivery_rate(
                propagation,
                CELL_B_STATION,
                CELL_A_STATION,
                threshold,
                seed=walls * 100 + threshold + 50,
            )
            if keep > 0.999 and exclude == 0.0:
                usable.append(threshold)
        if usable:
            print(f"   isolating thresholds: {usable[0]}..{usable[-1]} "
                  f"({len(usable)} usable settings)")
        else:
            print("   NO threshold isolates the cells "
                  "(the paper: 'a single building wall' rarely suffices)")

        # Zone map at the lowest isolating threshold: "border" spots
        # hear both cells (a mobile there disrupts both); "dead" spots
        # hear neither.
        if usable:
            threshold = usable[0]
            border, dead = [], []
            for x in [v / 2.0 for v in range(2, 35)]:
                spot = Point(float(x), 0.0)
                level_a = propagation.mean_level(CELL_A_STATION, spot)
                level_b = propagation.mean_level(CELL_B_STATION, spot)
                hears_a = level_a >= threshold
                hears_b = level_b >= threshold
                if hears_a and hears_b:
                    border.append(x)
                elif not hears_a and not hears_b:
                    dead.append(x)
            if border:
                print(f"   border zone at threshold {threshold}: "
                      f"x = {border[0]:.1f}..{border[-1]:.1f} ft "
                      f"({border[-1] - border[0]:.1f} ft wide) — mobiles "
                      "here disrupt both pseudo-cells")
            if dead:
                print(f"   dead zone at threshold {threshold}: "
                      f"x = {dead[0]:.1f}..{dead[-1]:.1f} ft — mobiles "
                      "here reach neither cell")
            if not border and not dead:
                print(f"   clean handoff at threshold {threshold}")
        print()

    print("Conclusion (matches Section 6): one wall cannot isolate cells; "
          "2-3 walls open a usable threshold window, at the price of a "
          "border zone — the paper's case for power control and multiple "
          "spreading sequences in future designs.")


if __name__ == "__main__":
    main()
