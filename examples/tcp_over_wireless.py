#!/usr/bin/env python3
"""A file transfer over WaveLAN, three ways (Section 9.3).

Downloads a 200 KB "file" from a fixed host to a mobile laptop while
the laptop retreats from its base station, comparing:

* plain end-to-end TCP (1996-era coarse timers);
* the same TCP over a link with 3 transparent retries;
* the same TCP with a snoop agent at the base station.

Watch where each approach gives out — and how the modem's own signal
registers would have told you in advance.

Run:  python examples/tcp_over_wireless.py
"""

from repro.transport import LinkConfig, run_snoop_transfer, run_transfer

FILE_SEGMENTS = 200  # 200 KB at 1 KB per segment

STOPS = (
    ("desk next to the base station", 29.5),
    ("same office, far corner", 24.0),
    ("two offices down the hall", 13.8),
    ("behind the metal cabinets", 9.5),
    ("edge of coverage", 8.0),
    ("the stairwell", 7.0),
)


def main() -> None:
    print(f"Transferring {FILE_SEGMENTS} KB at each stop "
          "(plain / +link ARQ / +snoop):\n")
    print(f"{'location':>32} | {'level':>5} | {'plain':>9} | "
          f"{'link ARQ':>9} | {'snoop':>9}")
    for location, level in STOPS:
        cells = []
        for variant in ("plain", "arq", "snoop"):
            config = LinkConfig(
                mean_level=level,
                arq_retries=3 if variant == "arq" else 0,
            )
            if variant == "snoop":
                sender, _, _, _ = run_snoop_transfer(
                    config, total_segments=FILE_SEGMENTS, seed=42,
                    time_limit_s=90.0,
                )
            else:
                sender, _, _ = run_transfer(
                    config, total_segments=FILE_SEGMENTS, seed=42,
                    time_limit_s=90.0,
                )
            if sender.finished:
                seconds = sender.finish_time
                cells.append(f"{seconds:6.1f} s")
            else:
                done = sender.highest_acked
                cells.append(f"{100 * done / FILE_SEGMENTS:5.0f}%*")
        print(f"{location:>32} | {level:5.1f} | " + " | ".join(
            f"{c:>9}" for c in cells))
    print("\n(* = percentage completed when the 90 s patience ran out)")
    print("\nThe paper's Figure-2 regions, felt through a file transfer: "
          "everything is instant above level ~9; TCP's congestion "
          "response is what actually fails first below it; and the "
          "fixes the 1996 literature proposed (link retries, snooping) "
          "buy back the error region almost entirely.")


if __name__ == "__main__":
    main()
