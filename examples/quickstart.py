#!/usr/bin/env python3
"""Quickstart: run one WaveLAN measurement trial and analyze it.

This walks the full pipeline the paper describes in Section 4:

1. configure a physical scenario (an office, two laptops 8 ft apart);
2. blast specially-formatted UDP test packets across the simulated link,
   logging every received bit + the modem status registers;
3. run the offline analysis: heuristic packet matching, damage
   classification, Table-1 metrics, per-class signal statistics.

Run:  python examples/quickstart.py
"""

from repro import TrialConfig, analyze_trial, classify_trace, run_fast_trial
from repro.analysis.signalstats import signal_stats_by_class
from repro.analysis.tables import render_metrics_table, render_signal_table
from repro.environment import Point, PropagationModel


def main() -> None:
    # -- 1. the physical scenario -------------------------------------
    propagation = PropagationModel.office()
    config = TrialConfig(
        name="quickstart-office",
        packets=20_000,
        seed=2024,
        propagation=propagation,
        tx_position=Point(0.0, 0.0),
        rx_position=Point(8.0, 0.0),
    )
    print(f"Office link, 8 ft apart: predicted mean signal level "
          f"{config.resolved_mean_level():.1f} (the paper's office trials "
          f"ran at ~29.5)\n")

    # -- 2. the measurement -------------------------------------------
    output = run_fast_trial(config)
    trace = output.trace
    print(f"Sent {trace.packets_sent} test packets; the promiscuous "
          f"receiver logged {trace.packets_received} frames.\n")

    # -- 3. the offline analysis --------------------------------------
    metrics = analyze_trial(trace)
    print("Table-1-style metrics:")
    print(render_metrics_table([metrics]))
    print(f"\nEstimated BER: {metrics.bit_error_rate:.2g} over "
          f"{metrics.body_bits_received:.2g} body bits "
          f"(the paper: 'very low ... low enough for optimism about "
          f"extending even fairly error-intolerant applications')\n")

    classified = classify_trace(trace)
    print("Signal metrics by packet class:")
    print(render_signal_table(signal_stats_by_class(classified)))

    # -- 4. now make it interesting: degrade the link ------------------
    print("\nSame link through a human body and two concrete walls "
          "(the Section 6.3 scenario):")
    from repro.experiments.scenarios import body_scenario

    degraded_prop, tx, rx = body_scenario(with_body=True)
    degraded = run_fast_trial(
        TrialConfig(
            name="quickstart-body",
            packets=5_000,
            seed=2025,
            propagation=degraded_prop,
            tx_position=tx,
            rx_position=rx,
        )
    )
    print(render_metrics_table([analyze_trial(degraded.trace)]))


if __name__ == "__main__":
    main()
