#!/usr/bin/env python3
"""Scenario sweep: generate a fleet from the topology DSL and find the
operating envelope of an office link.

The paper measures a handful of hand-picked setups; the scenario
compiler makes the whole design space cheap to sweep.  This example:

1. generates a seeded (distance x interior walls x SS phones) grid of
   20 scenarios with :func:`repro.scenario.generate.grid_fleet`;
2. runs every link through the experiment engine (``jobs=2`` fans the
   trials over a process pool — the rows are byte-identical to a
   serial run);
3. prints the goodput pareto table: which combinations still carry
   traffic, and where the link falls off the cliff.

The fingerprint to look for: plaster walls cost ~5 levels each but the
link stays clean until the level nears the paper's error region
(below ~8), while a single spread-spectrum phone near the receiver
destroys goodput at *any* distance — interference, not attenuation, is
what breaks WaveLAN (Sections 6-7 of the paper).

Run:  python examples/scenario_sweep.py
"""

from repro.scenario.fleet import render_fleet, run_fleet
from repro.scenario.generate import grid_fleet

SEED = 1996
PACKETS = 240


def main() -> None:
    fleet = grid_fleet(packets=PACKETS)
    print(
        f"Sweeping {len(fleet)} generated scenarios "
        f"(distance x walls x phones), {PACKETS} packets each, "
        f"seed {SEED}:\n"
    )
    result = run_fleet(fleet, seed=SEED, jobs=2)

    print(render_fleet(result, pareto=True))

    clean = [row for row in result.rows if row.goodput_percent > 99.0]
    jammed = [row for row in result.rows if row.goodput_percent < 1.0]
    print(
        f"\n{len(clean)} of {len(result.rows)} links are essentially "
        f"clean; {len(jammed)} are unusable."
    )
    worst_clean = min(clean, key=lambda row: row.predicted_level)
    print(
        f"Weakest clean link: {worst_clean.scenario} at predicted level "
        f"{worst_clean.predicted_level:.1f} — attenuation degrades "
        f"gracefully down to the paper's error region (~8)."
    )
    if jammed and all("p1" in row.scenario for row in jammed):
        print(
            "Every unusable link has the SS phone present: interference, "
            "not distance or walls, is what breaks the link."
        )


if __name__ == "__main__":
    main()
