#!/usr/bin/env python3
"""Adaptive FEC on a degrading link — the paper's Section 8 proposal.

A laptop walks away from its base station across a lecture hall.  As
the signal level falls toward the error region, the adaptive controller
reads the modem's per-packet status registers and escalates the RCPC
rate.  We compare goodput (information bits delivered per channel bit)
against the fixed-rate alternatives — showing why the paper argues "FEC
would be useless overhead in most situations" yet a *variable* scheme
pays off at the edges.

Run:  python examples/adaptive_fec_link.py
"""

import numpy as np

from repro import TrialConfig, run_fast_trial
from repro.analysis.classify import PacketClass, classify_trace
from repro.environment import Point
from repro.environment.propagation import PropagationModel
from repro.fec.adaptive import AdaptiveFecController
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RATE_ORDER, RcpcCodec
from repro.framing.testpacket import BODY_BITS

WALK_DISTANCES_FT = [10, 25, 40, 55, 65, 75, 82, 88, 94, 100]
PACKETS_PER_STOP = 300
INFO_BITS = 512


def packet_outcomes(distance_ft: float, seed: int):
    """(signal stats, per-packet syndromes or None) at one stop."""
    propagation = PropagationModel.lecture_hall()
    output = run_fast_trial(
        TrialConfig(
            name=f"walk-{distance_ft}",
            packets=PACKETS_PER_STOP,
            seed=seed,
            propagation=propagation,
            tx_position=Point(float(distance_ft), 0.0),
            rx_position=Point(0.0, 0.0),
        )
    )
    classified = classify_trace(output.trace)
    return classified


def simulate_fec(classified, rate_picker) -> tuple[int, int, int]:
    """Replay a stop's packets through FEC at rates from ``rate_picker``.

    Returns (packets_ok, info_bits_delivered, channel_bits_spent).
    """
    interleaver = BlockInterleaver(32, 64)
    codecs = {name: RcpcCodec(name) for name in RATE_ORDER}
    rng = np.random.default_rng(0)
    info = rng.integers(0, 2, INFO_BITS).astype(np.uint8)

    ok = 0
    delivered = 0
    spent = 0
    for packet in classified.test_packets:
        status = packet.record.status
        rate = rate_picker(status)
        codec = codecs[rate]
        transmitted = codec.encode(info)
        spent += len(transmitted)
        if packet.packet_class is PacketClass.TRUNCATED:
            continue  # truncation defeats any per-packet block code
        stream = interleaver.scramble(transmitted).copy()
        if packet.syndrome is not None and packet.syndrome.body_bits_damaged:
            scale = len(transmitted) / BODY_BITS
            positions = np.unique(
                (packet.syndrome.body_bit_positions * scale).astype(np.int64)
            )
            positions = positions[positions < len(transmitted)]
            stream[positions] ^= 1
        decoded = codec.decode(interleaver.unscramble(stream))
        if np.array_equal(decoded, info):
            ok += 1
            delivered += INFO_BITS
    return ok, delivered, spent


def main() -> None:
    print("A walk across the lecture hall, with FEC choices per stop:\n")
    header = (f"{'ft':>4} {'level':>6} {'dmg%':>6} | "
              + " | ".join(f"{r:>7}" for r in RATE_ORDER)
              + " | adaptive (chosen rates)")
    print(header)

    controllers = {"adaptive": AdaptiveFecController()}
    totals = {name: [0, 0] for name in list(RATE_ORDER) + ["adaptive"]}

    for stop, distance in enumerate(WALK_DISTANCES_FT):
        classified = packet_outcomes(distance, seed=4000 + stop)
        levels = [p.record.status.signal_level for p in classified.test_packets]
        damaged = sum(
            1
            for p in classified.test_packets
            if p.packet_class is not PacketClass.UNDAMAGED
        )
        n = max(1, len(classified.test_packets))

        cells = []
        for rate in RATE_ORDER:
            ok, delivered, spent = simulate_fec(classified, lambda s, r=rate: r)
            totals[rate][0] += delivered
            totals[rate][1] += spent
            cells.append(f"{100 * ok / n:6.1f}%")

        controller = controllers["adaptive"]
        chosen = []

        def adaptive_picker(status):
            decision = controller.observe(
                status.signal_level, status.silence_level, status.signal_quality
            )
            chosen.append(decision.rate_name)
            return decision.rate_name

        ok, delivered, spent = simulate_fec(classified, adaptive_picker)
        totals["adaptive"][0] += delivered
        totals["adaptive"][1] += spent
        dominant = max(set(chosen), key=chosen.count) if chosen else "-"
        print(f"{distance:4d} {np.mean(levels) if levels else 0:6.1f} "
              f"{100 * damaged / n:6.1f} | "
              + " | ".join(cells)
              + f" | {100 * ok / n:6.1f}% (mostly {dominant})")

    print("\nGoodput over the whole walk (info bits / channel bits):")
    for name, (delivered, spent) in totals.items():
        efficiency = delivered / spent if spent else 0.0
        print(f"  {name:>8}: {efficiency:.3f}")
    print("\nThe adaptive scheme matches the weak code's efficiency on the "
          "strong half of the walk and the strong code's robustness at the "
          "edge — the 'variable FEC mechanism' of Section 8.")


if __name__ == "__main__":
    main()
