"""Shim so `pip install -e .` works in offline environments without the
`wheel` package: setuptools 65's legacy develop path handles it."""
from setuptools import setup

setup()
