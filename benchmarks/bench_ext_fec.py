"""X1 — Section 8 extension: variable FEC on the observed syndromes.

The paper's conjecture: Tx5-style attenuation bursts are "trivial to
correct using error coding", and the SS-phone errors "might be
recoverable through a variable FEC mechanism".  This bench closes the
loop with the from-scratch RCPC/Viterbi stack.
"""

from benchmarks.conftest import run_once
from repro.experiments import fec_eval


def test_ext_fec(benchmark, bench_scale):
    result = run_once(benchmark, fec_eval.run, scale=1.0 * bench_scale)
    print()
    print("Extension X1: RCPC recoverability of observed syndromes")
    for o in result.outcomes:
        marking = {"none": "", "erase": "+E", "soft": "+S"}[o.marking]
        print(f"  {o.scenario:>18} rate {o.rate_name + marking:>6} "
              f"{'ilv' if o.interleaved else '   '}: "
              f"{100 * o.recovery_fraction:5.1f}% of {o.packets} recovered "
              f"({o.residual_bit_errors} residual bits, "
              f"{100 * o.overhead_fraction:.0f}% overhead)")
    for a in result.adaptive:
        print(f"  adaptive[{a.scenario}]: {a.rate_counts} "
              f"(mean overhead {100 * a.mean_overhead:.0f}%)")

    # Paper claim 1: Tx5 attenuation bursts trivially correctable —
    # 4/5 + interleaving fully recovers them at 25% overhead.
    tx5_45 = result.outcome("Tx5 attenuation", "4/5", interleaved=True)
    assert tx5_45.recovery_fraction == 1.0
    # Interleaving matters on this bursty channel.
    tx5_89_raw = result.outcome("Tx5 attenuation", "8/9", interleaved=False)
    tx5_89_ilv = result.outcome("Tx5 attenuation", "8/9", interleaved=True)
    assert tx5_89_ilv.recovery_fraction > tx5_89_raw.recovery_fraction

    # Paper claim 2, confirmed: the SS-phone regime is recoverable —
    # but only at rate 1/2, and interleaving is irrelevant there (the
    # jam windows are locally sparse, ~3% BER).
    ss_89 = result.outcome("SS-phone handset", "8/9", interleaved=True)
    ss_12 = result.outcome("SS-phone handset", "1/2", interleaved=True)
    ss_12_raw = result.outcome("SS-phone handset", "1/2", interleaved=False)
    assert ss_12.recovery_fraction > 0.85
    assert ss_12.recovery_fraction > ss_89.recovery_fraction
    assert abs(ss_12.recovery_fraction - ss_12_raw.recovery_fraction) < 0.15

    # Burst-aware receiver variants: erasing the whole AGC-flagged jam
    # window throws away its ~97% good bits and is counterproductive;
    # soft down-weighting is safe.
    erased = result.outcome("SS-phone handset", "1/2", True, marking="erase")
    soft = result.outcome("SS-phone handset", "1/2", True, marking="soft")
    assert erased.recovery_fraction < ss_12.recovery_fraction - 0.3
    assert soft.recovery_fraction >= ss_12.recovery_fraction - 0.1

    # The adaptive controller spends little on the clean scenario's
    # strong-signal packets and escalates under interference.
    tx5_sched, ss_sched = result.adaptive
    assert ss_sched.mean_overhead > tx5_sched.mean_overhead
