"""T8 — Table 8: effects of a human body on loss and errors.

Paper: the no-body control is error free; a person in the path induces
loss, truncation (3), and body damage (224 of 1442).
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_metrics_table
from repro.experiments import body


def test_table08_body(benchmark, bench_scale):
    result = run_once(benchmark, body.run, scale=1.0 * bench_scale)
    print()
    print("Table 8: human body effects")
    print(render_metrics_table(result.metrics_rows))
    print("paper: no body clean; with body 3 truncated, 224 body damaged")

    control = result.metrics("No body")
    assert control.body_bits_damaged == 0
    assert control.packets_truncated == 0
    assert control.packet_loss_percent < 0.1

    impaired = result.metrics("Body")
    assert impaired.packets_lost > 0
    assert impaired.packets_truncated >= 1
    assert 100 < impaired.body_damaged_packets < 400
