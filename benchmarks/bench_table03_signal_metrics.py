"""T3 — Table 3: packet error conditions versus signal metrics.

Paper: damaged packets' mean level ~7.5 (main body below 8), undamaged
well above; truncated packets' *quality* sharply depressed; outsiders
weak and mostly damaged.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import error_vs_level


def test_table03_signal_metrics(benchmark, bench_scale):
    result = run_once(benchmark, error_vs_level.run, scale=1.0 * bench_scale)
    print()
    print("Table 3: packet error conditions vs signal metrics")
    print(render_signal_table(result.table3))
    print("paper level means: all 14.15 / undamaged 14.74 / truncated 6.20 "
          "/ body damaged 7.52")

    undamaged = result.group("Undamaged")
    damaged = result.group("Body damaged")
    truncated = result.group("Truncated")
    assert damaged.level.mean < 8.5
    assert undamaged.level.mean - damaged.level.mean > 2.0
    assert truncated.quality.mean < undamaged.quality.mean - 3.0
    assert damaged.packets > 50
