"""Throughput micro-benchmarks of the library's hot paths.

Unlike the experiment benches (one round, experiment-scale), these are
true pytest-benchmark micro-benchmarks with multiple rounds: frame
construction, trace matching, the vectorized trial loop, and Viterbi
decoding — the four paths that dominate experiment wall-clock.

The ``bench_smoke``-marked tests additionally race the vectorized
paths against their scalar reference twins and append the measurements
to ``BENCH_internal.json`` at the repo root (per-stage wall-clock,
packets/sec, speedup vs scalar), so the perf trajectory is tracked
across PRs.  They are fast enough for CI and double as a regression
gate: the bulk paths must never fall behind their scalar references.
"""

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.classify import classify_trace
from repro.analysis.matching import TraceMatcher
from repro.environment.geometry import Point
from repro.fec.convolutional import ConvolutionalCode
from repro.fec.viterbi import viterbi_decode
from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.trace.trial import TrialConfig, run_fast_trial

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_internal.json"


def _record_stage(stage: str, payload: dict) -> None:
    """Merge one stage's measurements into ``BENCH_internal.json``.

    Incremental merge (read-update-write) so any subset of the smoke
    tests keeps the other stages' latest numbers.
    """
    doc: dict = {"schema": 1, "stages": {}}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    doc.setdefault("stages", {})[stage] = payload
    doc["updated"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _best_of(func, rounds: int = 2) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.fixture(scope="module")
def factory():
    return TestPacketFactory(TestPacketSpec.default())


def test_perf_frame_build(benchmark, factory):
    """Incremental frame construction (target: a few µs per frame)."""
    counter = iter(range(10**9))

    def build():
        return factory.build(next(counter))

    frame = benchmark(build)
    assert len(frame) == 1072


def test_perf_matcher_fast_path(benchmark, factory):
    """Exact-match identification of a pristine frame."""
    matcher = TraceMatcher(TestPacketSpec.default(), packets_sent=10_000)
    frame = factory.build(1234)
    result = benchmark(matcher.match_bytes, frame)
    assert result.exact


def test_perf_matcher_voting_path(benchmark, factory):
    """Majority-vote recovery of a damaged frame."""
    from repro.framing.bits import flip_bits

    matcher = TraceMatcher(TestPacketSpec.default(), packets_sent=10_000)
    rng = np.random.default_rng(0)
    damaged = flip_bits(
        factory.build(1234),
        rng.choice(1072 * 8, size=100, replace=False),
    )
    result = benchmark(matcher.match_bytes, damaged)
    assert result.sequence == 1234


def test_perf_vectorized_trial(benchmark):
    """The fast trial loop (packets/second end to end)."""
    counter = iter(range(10**6))

    def trial():
        return run_fast_trial(
            TrialConfig(
                name="perf", packets=5_000, mean_level=29.5, seed=next(counter)
            )
        )

    output = benchmark.pedantic(trial, rounds=3, iterations=1)
    assert output.trace.packets_received > 4_900


def test_perf_viterbi_decode(benchmark):
    """K=7 Viterbi decoding of a 1024-bit block."""
    code = ConvolutionalCode()
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 1024).astype(np.uint8)
    coded = code.encode(bits)
    damaged = coded.copy()
    damaged[rng.choice(len(coded), size=30, replace=False)] ^= 1

    decoded = benchmark(viterbi_decode, code, damaged)
    assert np.array_equal(decoded, bits)


# ----------------------------------------------------------------------
# Scalar-vs-bulk stage races (bench_smoke: run on every CI push)
# ----------------------------------------------------------------------

SMOKE_PACKETS = 4_000


def _interference_source(family: str):
    if family == "spread_spectrum":
        # The worst interferer the paper found: an SS phone pair close
        # to the receiver.
        return SpreadSpectrumPhonePair(
            handset_position=Point(11.0, 6.0), base_position=Point(9.0, 4.0)
        )
    if family == "narrowband":
        from repro.interference.narrowband import NarrowbandPhonePair

        return NarrowbandPhonePair(Point(11.0, 6.0), Point(9.0, 4.0))
    if family == "competing":
        from repro.interference.wavelan import CompetingWaveLanTransmitter

        return CompetingWaveLanTransmitter(position=Point(12.0, 3.0))
    raise ValueError(family)


def _interference_config(
    family: str, per_packet: bool, packets: int = SMOKE_PACKETS
) -> TrialConfig:
    return TrialConfig(
        name=f"bench-{family}",
        packets=packets,
        seed=999,
        tx_position=Point(0.0, 0.0),
        rx_position=Point(10.0, 5.0),
        interference=(_interference_source(family),),
        force_per_packet=per_packet,
    )


@pytest.mark.bench_smoke
@pytest.mark.parametrize(
    "family", ["spread_spectrum", "narrowband", "competing"]
)
def test_perf_interference_trial_vs_scalar(family):
    """The vectorized interference trial path against the per-packet
    reference loop, on identical configurations, for each interferer
    family of Tables 10-14.  The scalar twin shares this PR's faster
    damage helpers, so the ratio understates the speedup over the
    pre-vectorization seed (measured 5-24x per family)."""
    run_fast_trial(_interference_config(family, per_packet=False, packets=200))
    scalar_s, _ = _best_of(
        lambda: run_fast_trial(_interference_config(family, per_packet=True))
    )
    bulk_s, output = _best_of(
        lambda: run_fast_trial(_interference_config(family, per_packet=False))
    )
    speedup = scalar_s / bulk_s
    _record_stage(
        f"interference_trial_{family}",
        {
            "packets": SMOKE_PACKETS,
            "scalar_wall_s": round(scalar_s, 4),
            "bulk_wall_s": round(bulk_s, 4),
            "scalar_packets_per_s": round(SMOKE_PACKETS / scalar_s),
            "bulk_packets_per_s": round(SMOKE_PACKETS / bulk_s),
            "speedup_vs_scalar": round(speedup, 2),
        },
    )
    assert output.trace.packets_received > 0
    # CI smoke floor — local ratios run 8-45x depending on family (the
    # grouped-distinct damage sampler landed the slowest family >15x).
    assert speedup > 4.0


@pytest.mark.bench_smoke
def test_perf_trace_matching_vs_scalar():
    """Chunked bulk matching against the scalar matcher loop on a
    mostly-clean trace — the shape the report's long office trials
    have, where the batched template bank does the work."""
    output = run_fast_trial(
        TrialConfig(name="bench-match", packets=20_000, mean_level=10.0, seed=5)
    )
    trace = output.trace
    records = len(trace.records)

    def classify_scalar():
        matcher = TraceMatcher(trace.spec, trace.packets_sent)
        return [matcher.match_bytes(record.data) for record in trace.records]

    classify_trace(trace)  # warm
    scalar_s, scalar_matches = _best_of(classify_scalar)
    bulk_s, classified = _best_of(lambda: classify_trace(trace))
    speedup = scalar_s / bulk_s
    _record_stage(
        "trace_matching",
        {
            "records": records,
            "scalar_wall_s": round(scalar_s, 4),
            "bulk_wall_s": round(bulk_s, 4),
            "scalar_records_per_s": round(records / scalar_s),
            "bulk_records_per_s": round(records / bulk_s),
            "speedup_vs_scalar": round(speedup, 2),
        },
    )
    # Equivalence ride-along: same matches out of both paths, and the
    # bulk side also did full damage classification in that time.
    assert len(classified.packets) == len(scalar_matches) == records
    # CI smoke floor — locally ~7x since the record fast path stopped
    # materializing bytes for the clean majority.
    assert speedup > 2.0


@pytest.mark.bench_smoke
def test_perf_clean_trial_throughput():
    """The interference-free vectorized loop — the report's bulk of
    simulated packets; tracked as packets/sec only (its scalar twin
    was retired two PRs ago)."""

    def trial():
        return run_fast_trial(
            TrialConfig(name="bench-clean", packets=20_000, mean_level=29.5, seed=3)
        )

    trial()  # warm
    wall_s, output = _best_of(trial)
    _record_stage(
        "clean_trial",
        {
            "packets": 20_000,
            "bulk_wall_s": round(wall_s, 4),
            "bulk_packets_per_s": round(20_000 / wall_s),
        },
    )
    assert output.trace.packets_received > 19_000
    # CI smoke floor — locally ~1M packets/s with deferred payload
    # materialization; generous headroom for slow CI machines.
    assert 20_000 / wall_s > 250_000


@pytest.mark.bench_smoke
def test_perf_fec_decode_batch_vs_scalar():
    """Batched RCPC/Viterbi decode against the per-packet loop.

    One rate-1/2 codec, 96 damaged blocks of 512 info bits — the shape
    the FEC-evaluation experiment decodes per syndrome batch.  The
    batched path must return byte-identical bits (it runs the same
    add-compare-select in the same float order) while amortizing the
    Python-level trellis step loop across the whole batch.
    """
    from repro.fec.rcpc import RcpcCodec

    codec = RcpcCodec("1/2")
    rng = np.random.default_rng(21)
    batch, info_bits = 96, 512
    blocks = []
    weight_rows = []
    for _ in range(batch):
        bits = rng.integers(0, 2, info_bits).astype(np.uint8)
        transmitted = codec.encode(bits)
        damaged = transmitted.copy()
        damaged[rng.random(damaged.size) < 0.02] ^= 1
        blocks.append(damaged)
        weights = np.ones(damaged.size)
        weights[rng.random(damaged.size) < 0.05] = 0.3
        weight_rows.append(weights)
    received = np.stack(blocks)
    weights = np.stack(weight_rows)

    def decode_scalar():
        return np.stack(
            [codec.decode(received[i], weights[i]) for i in range(batch)]
        )

    decode_scalar()  # warm
    codec.decode_batch(received, weights)
    scalar_s, scalar_bits = _best_of(decode_scalar)
    bulk_s, batch_bits = _best_of(
        lambda: codec.decode_batch(received, weights)
    )
    speedup = scalar_s / bulk_s
    _record_stage(
        "fec_decode",
        {
            "blocks": batch,
            "info_bits": info_bits,
            "scalar_wall_s": round(scalar_s, 4),
            "bulk_wall_s": round(bulk_s, 4),
            "scalar_blocks_per_s": round(batch / scalar_s),
            "bulk_blocks_per_s": round(batch / bulk_s),
            "speedup_vs_scalar": round(speedup, 2),
        },
    )
    # Byte-identity, not statistical equivalence: same kernel, batched.
    assert np.array_equal(scalar_bits, batch_bits)
    # CI smoke floor — locally ~10x; the per-packet loop pays the
    # Python trellis step cost 48 times over.
    assert speedup > 5.0


@pytest.mark.bench_smoke
def test_perf_trace_persist_v1_vs_v2(tmp_path):
    """Trace save/load throughput: v1 JSON-lines against the v2
    columnar binary store, on the same 20k-record trace.

    The acceptance floor for the columnar store is a 10x records/s
    advantage on load — in practice the memory-mapped column reader
    runs orders of magnitude ahead of JSON parsing.  A ride-along
    equivalence check classifies the loaded columnar trace and
    requires verdict-identical output to classifying in memory.
    """
    from repro.trace.persist import load_trace, save_trace

    output = run_fast_trial(
        TrialConfig(name="bench-persist", packets=20_000, mean_level=10.0, seed=7)
    )
    trace = output.trace
    records = len(trace.records)
    v1_path = tmp_path / "bench.jsonl"
    v2_path = tmp_path / "bench.wlt2"

    v1_save_s, _ = _best_of(lambda: save_trace(trace, v1_path))
    v2_save_s, _ = _best_of(lambda: save_trace(trace, v2_path))
    v1_load_s, v1_trace = _best_of(lambda: load_trace(v1_path))
    v2_load_s, v2_trace = _best_of(lambda: load_trace(v2_path))
    load_speedup = v1_load_s / v2_load_s
    _record_stage(
        "trace_persist",
        {
            "records": records,
            "v1_bytes": v1_path.stat().st_size,
            "v2_bytes": v2_path.stat().st_size,
            "v1_save_wall_s": round(v1_save_s, 4),
            "v2_save_wall_s": round(v2_save_s, 4),
            "v1_load_wall_s": round(v1_load_s, 4),
            "v2_load_wall_s": round(v2_load_s, 4),
            "v1_load_records_per_s": round(records / v1_load_s),
            "v2_load_records_per_s": round(records / v2_load_s),
            "v2_load_speedup_vs_v1": round(load_speedup, 2),
        },
    )
    assert len(v1_trace.records) == v2_trace.packets_received == records
    # Acceptance floor: the columnar load must be >= 10x the JSONL load.
    assert load_speedup >= 10.0
    # Equivalence ride-along: classifying the memory-mapped columnar
    # trace yields exactly what classifying the in-memory trace does.
    mem = classify_trace(trace)
    col = classify_trace(v2_trace)
    assert [
        (p.packet_class, p.sequence, p.wrapper_damaged,
         p.body_bits_damaged, p.truncated_bytes_missing)
        for p in mem.packets
    ] == [
        (p.packet_class, p.sequence, p.wrapper_damaged,
         p.body_bits_damaged, p.truncated_bytes_missing)
        for p in col.packets
    ]


@pytest.mark.bench_smoke
def test_perf_engine_dispatch_overhead():
    """The unified experiment engine against a hand-rolled loop over
    the same worker functions with the same derived seeds.

    The engine's declarative layer (spec lookup, plan building, seed
    derivation, task wrapping, aggregation) must stay measurement
    noise, not a tax: the acceptance ceiling is 15% wall-clock
    overhead on a real experiment (Table 4 at scale 0.25, ~12k
    fast-path packets) — generous against the ±20-30% per-round
    scheduler jitter of a shared box, tight against any real
    per-trial dispatch cost.  The legs are interleaved (ABBA) and
    compared via the median per-round ratio so neither leg can ride a
    drift the other doesn't see.  An equivalence ride-along requires
    identical rows out of both paths.
    """
    from repro.experiments import engine as experiment_engine
    from repro.experiments import walls
    from repro.experiments.engine import PlanContext
    from repro.experiments.scenarios import single_wall_scenarios

    scale, seed = 0.25, 64
    packets = max(500, int(walls.PAPER_PACKETS * scale))

    def direct():
        values = [
            walls._run_wall(
                setup.name,
                packets,
                experiment_engine.trial_seed(seed, "table4", setup.name),
            )
            for setup in single_wall_scenarios()
        ]
        return walls._aggregate(PlanContext(scale=scale, seed=seed), values)

    def engined():
        return walls.run(scale=scale, seed=seed)

    direct()  # warm both paths fully before measuring
    engined()
    # Interleave the legs in ABBA order and take the median of the
    # per-round engine/direct ratios: running all of one leg before
    # all of the other lets slow drift (allocator state, page cache,
    # CPU frequency) land entirely on whichever leg goes second — the
    # order bias that once recorded a nonsensical −20% "overhead"
    # (engine *faster* than direct).  Pairing within a round cancels
    # round-level drift, alternating which leg goes first cancels
    # within-round order effects, and the median shrugs off the
    # scheduler hiccups that best-of would hide and mean would absorb.
    direct_times: list[float] = []
    engine_times: list[float] = []
    direct_result = engine_result = None

    def timed(func, into):
        start = time.perf_counter()
        value = func()
        into.append(time.perf_counter() - start)
        return value

    for round_index in range(10):
        if round_index % 2 == 0:
            direct_result = timed(direct, direct_times)
            engine_result = timed(engined, engine_times)
        else:
            engine_result = timed(engined, engine_times)
            direct_result = timed(direct, direct_times)
    direct_s = statistics.median(direct_times)
    engine_s = statistics.median(engine_times)
    overhead = statistics.median(
        e / d for e, d in zip(engine_times, direct_times)
    ) - 1.0
    # The asserted ceiling uses each leg's best round instead: timing
    # noise on a time-sliced box is one-sided (the scheduler only ever
    # *adds* time), so floor-to-floor is the stable estimate of the
    # true dispatch cost (±2% across trials, vs ±10% for the medians).
    overhead_floor = min(engine_times) / min(direct_times) - 1.0
    _record_stage(
        "engine_overhead",
        {
            "packets": 4 * packets,
            "direct_wall_s": round(direct_s, 4),
            "engine_wall_s": round(engine_s, 4),
            "overhead_percent": round(100.0 * overhead, 2),
            "overhead_floor_percent": round(100.0 * overhead_floor, 2),
        },
    )
    # Equivalence ride-along: the engine is plumbing, not a model.
    assert engine_result.signal_rows == direct_result.signal_rows
    assert engine_result.metrics_rows == direct_result.metrics_rows
    # Acceptance ceiling: declarative dispatch must stay measurement
    # noise.  Per-round wall jitter on a time-sliced box is ±20-30%
    # and even the median keeps ±10% of it, so the gate runs on the
    # floor-to-floor ratio at 15% — far above the ~1% real cost, low
    # enough to catch an actual per-trial dispatch tax.
    assert overhead_floor < 0.15


@pytest.mark.bench_smoke
def test_perf_scenario_compile_overhead():
    """Compiling a scenario spec must stay noise next to running it.

    Every pool worker re-compiles its scenario from the registry
    in-process (models don't travel across the pool boundary), so the
    compiler sits on the per-trial hot path.  The acceptance ceiling is
    a single compile costing <5% of one experiment-scale trial (Table 4
    wall trial at scale 0.25, ~3k fast-path packets).  The recorded
    ``compile_wall_s`` is the total over a fixed 200 compiles —
    comparable in magnitude to the other stages, so the 25% ``bench
    diff`` tolerance gates real compiler regressions, not
    microsecond-scale jitter.
    """
    from repro.scenario.compiler import compile_scenario
    from repro.scenario.registry import REGISTRY

    spec = REGISTRY.get("paper/table4-wall1")
    compiled = compile_scenario(spec)  # warm imports and caches

    rounds = 200
    start = time.perf_counter()
    for _ in range(rounds):
        compiled = compile_scenario(spec)
    compile_total_s = time.perf_counter() - start
    compile_s = compile_total_s / rounds

    packets = max(500, int(12_720 * 0.25))
    config = compiled.trial_config(name="Wall 1", packets=packets, seed=64)
    trial_s, _ = _best_of(lambda: run_fast_trial(config), rounds=3)

    overhead = compile_s / trial_s
    _record_stage(
        "scenario_compile",
        {
            "compiles": rounds,
            "compile_wall_s": round(compile_total_s, 4),
            "compile_one_s": round(compile_s, 6),
            "trial_wall_s": round(trial_s, 4),
            "packets": packets,
            "overhead_percent": round(100.0 * overhead, 3),
        },
    )
    assert overhead < 0.05, (
        f"scenario compile costs {100 * overhead:.2f}% of a trial "
        f"({compile_s * 1e3:.2f} ms vs {trial_s * 1e3:.1f} ms)"
    )


@pytest.mark.bench_smoke
def test_bench_json_well_formed():
    """The emitted JSON is parseable and carries the required fields."""
    doc = json.loads(BENCH_JSON.read_text())
    assert doc["schema"] == 1
    stage = doc["stages"]["interference_trial_spread_spectrum"]
    for key in ("scalar_wall_s", "bulk_wall_s", "speedup_vs_scalar"):
        assert key in stage
