"""Throughput micro-benchmarks of the library's hot paths.

Unlike the experiment benches (one round, experiment-scale), these are
true pytest-benchmark micro-benchmarks with multiple rounds: frame
construction, trace matching, the vectorized trial loop, and Viterbi
decoding — the four paths that dominate experiment wall-clock.
"""

import numpy as np
import pytest

from repro.analysis.matching import TraceMatcher
from repro.fec.convolutional import ConvolutionalCode
from repro.fec.viterbi import viterbi_decode
from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.trace.trial import TrialConfig, run_fast_trial


@pytest.fixture(scope="module")
def factory():
    return TestPacketFactory(TestPacketSpec.default())


def test_perf_frame_build(benchmark, factory):
    """Incremental frame construction (target: a few µs per frame)."""
    counter = iter(range(10**9))

    def build():
        return factory.build(next(counter))

    frame = benchmark(build)
    assert len(frame) == 1072


def test_perf_matcher_fast_path(benchmark, factory):
    """Exact-match identification of a pristine frame."""
    matcher = TraceMatcher(TestPacketSpec.default(), packets_sent=10_000)
    frame = factory.build(1234)
    result = benchmark(matcher.match_bytes, frame)
    assert result.exact


def test_perf_matcher_voting_path(benchmark, factory):
    """Majority-vote recovery of a damaged frame."""
    from repro.framing.bits import flip_bits

    matcher = TraceMatcher(TestPacketSpec.default(), packets_sent=10_000)
    rng = np.random.default_rng(0)
    damaged = flip_bits(
        factory.build(1234),
        rng.choice(1072 * 8, size=100, replace=False),
    )
    result = benchmark(matcher.match_bytes, damaged)
    assert result.sequence == 1234


def test_perf_vectorized_trial(benchmark):
    """The fast trial loop (packets/second end to end)."""
    counter = iter(range(10**6))

    def trial():
        return run_fast_trial(
            TrialConfig(
                name="perf", packets=5_000, mean_level=29.5, seed=next(counter)
            )
        )

    output = benchmark.pedantic(trial, rounds=3, iterations=1)
    assert output.trace.packets_received > 4_900


def test_perf_viterbi_decode(benchmark):
    """K=7 Viterbi decoding of a 1024-bit block."""
    code = ConvolutionalCode()
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 1024).astype(np.uint8)
    coded = code.encode(bits)
    damaged = coded.copy()
    damaged[rng.choice(len(coded), size=30, replace=False)] ^= 1

    decoded = benchmark(viterbi_decode, code, damaged)
    assert np.array_equal(decoded, bits)
