"""F1 — Figure 1: signal level as a function of distance.

Paper: smooth dropoff across the lecture hall with multipath dips at 6
and 30 feet; error bars span min/max per distance.
"""

from benchmarks.conftest import run_once
from repro.experiments import signal_vs_distance


def test_figure01_pathloss(benchmark, bench_scale):
    result = run_once(benchmark, signal_vs_distance.run, scale=1.0 * bench_scale)
    print()
    print("Figure 1: signal level vs distance (min/mean/max)")
    for p in result.points:
        bar = "#" * max(0, int(round(p.level_mean)))
        print(f"  {p.distance_ft:4.0f} ft | {p.level_min:3d} {p.level_mean:6.2f} "
              f"{p.level_max:3d} | {bar}")
    print(f"paper: dips at 6 ft and 30 ft; smooth decay elsewhere")
    print(f"measured dips: 6 ft -> {result.dip_depth(6.0):.1f} levels, "
          f"30 ft -> {result.dip_depth(30.0):.1f} levels")

    points = {p.distance_ft: p.level_mean for p in result.points}
    assert points[0] > points[20] > points[50] > points[80]
    assert result.dip_depth(6.0) > 2.0
    assert result.dip_depth(30.0) > 2.0
    # Error bars are tight (fraction of a level to ~2 levels).
    for p in result.points:
        assert p.level_max - p.level_min <= 6
