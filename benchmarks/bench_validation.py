"""V1 — internal validation: the vectorized fast path and the
event-driven MAC path agree on contention-free scenarios."""

from benchmarks.conftest import run_once
from repro.experiments import validation


def test_validation_paths_agree(benchmark, bench_scale):
    result = run_once(benchmark, validation.run, scale=1.0 * bench_scale)
    print()
    print("V1: fast vs MAC path")
    for c in result.comparisons:
        print(f"  {c.scenario:>12}: delivery "
              f"{100 * c.fast_delivery:.1f}/{100 * c.mac_delivery:.1f}%  "
              f"level {c.fast_level_mean:.2f}/{c.mac_level_mean:.2f}  "
              f"quality {c.fast_quality_mean:.2f}/{c.mac_quality_mean:.2f}")

    assert result.worst_delivery_gap < 0.02  # within 2 percentage points
    assert result.worst_level_gap < 0.3  # within a third of an AGC unit
    for c in result.comparisons:
        assert c.quality_gap < 0.2
        assert abs(c.fast_silence_mean - c.mac_silence_mean) < 0.5
