"""F3 — Figure 3: effects of the receive threshold.

Paper: both curves (packets filtered, collision-free transmissions)
sweep 0 % → 100 % across a window of a few units around the enemy's
received level; the filter is imperfect near the level but *clean* (no
damaged remnants).
"""

from benchmarks.conftest import run_once
from repro.experiments import threshold


def test_figure03_threshold(benchmark, bench_scale):
    result = run_once(
        benchmark, threshold.run, scale=0.2 * bench_scale, seed=53
    )
    print()
    print("Figure 3: receive-threshold sweep "
          f"(enemy observed level {result.observed_level_min}-"
          f"{result.observed_level_max})")
    for p in result.points:
        print(f"  threshold {p.threshold:2d}: filtered "
              f"{100 * p.filtered_fraction:5.1f}%  collision-free "
              f"{100 * p.collision_free_fraction:5.1f}%")
    print("paper: both curves 0% at the received level, 100% above it, "
          "with an imperfect transition — 'allow a margin of several units'")

    low = [p for p in result.points if p.threshold <= result.observed_level_min - 2]
    high = [p for p in result.points if p.threshold >= result.observed_level_max + 2]
    assert all(p.filtered_fraction < 0.05 for p in low)
    assert all(p.collision_free_fraction < 0.25 for p in low)
    assert all(p.filtered_fraction == 1.0 for p in high)
    assert all(p.collision_free_fraction > 0.95 for p in high)
    # Clean filtering: nothing damaged leaks through at any threshold.
    assert sum(p.damaged_leaked for p in result.points) == 0


def test_ablation_threshold_margin(benchmark, bench_scale):
    """X2: how many units of margin does full isolation need?"""
    result = run_once(
        benchmark, threshold.run, scale=0.1 * bench_scale, seed=97,
        include_collisions=False,
    )
    margin = result.margin_for_full_filtering()
    print(f"\nAblation X2: 100% filtering needs the threshold "
          f"{margin} unit(s) above the max observed level "
          f"(paper: 'a margin of several units'; Section 6: 'at least 6, "
          f"though 8-10 would be more desirable' counting level spread)")
    assert 1 <= margin <= 6
