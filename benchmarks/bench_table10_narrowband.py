"""T10 — Table 10: narrowband 900 MHz cordless phones.

Paper: zero damaged test packets in every configuration; silence level
ordering bases(19.32) > cluster(15.45) > handsets(11.33) >
talking(6.11) > off(2.40) — the power-control fingerprint.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import phones_narrowband


def test_table10_narrowband(benchmark, bench_scale):
    result = run_once(benchmark, phones_narrowband.run, scale=1.0 * bench_scale)
    print()
    print("Table 10: narrowband cordless phones")
    print(render_signal_table(result.signal_rows, label="Trial"))
    measured = {t: round(result.silence_mean(t), 2) for t in phones_narrowband.TRIALS}
    print(f"paper silence means:    {phones_narrowband.PAPER_SILENCE_MEANS}")
    print(f"measured silence means: {measured}")

    assert result.total_damaged_test_packets == 0
    s = {t: result.silence_mean(t) for t in phones_narrowband.TRIALS}
    assert (
        s["Bases nearby"]
        > s["Cluster"]
        > s["Handsets nearby"]
        > s["Handsets nearby talking"]
        > s["Phones off"]
    )
    # Magnitudes within ~2.5 levels of the paper's readings.
    for trial, paper in phones_narrowband.PAPER_SILENCE_MEANS.items():
        assert abs(s[trial] - paper) < 2.5, (trial, s[trial], paper)
    # Only background loss anywhere.
    for metrics in result.metrics_rows:
        assert metrics.packet_loss_percent < 0.3
