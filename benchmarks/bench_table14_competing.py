"""T14 — Table 14: competing WaveLAN transmitters.

Paper: with the victim threshold raised to 25, the hostile continuous
transmitters are fully masked — silence up from 3.35 to 13.62, level
and quality unchanged, loss .02 %, zero bit errors.  At the default
threshold the link was "completely unusable".
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import competing


def test_table14_competing(benchmark, bench_scale):
    result = run_once(benchmark, competing.run, scale=0.25 * bench_scale)
    print()
    print("Table 14: competing WaveLAN transmitters (threshold 25)")
    print(render_signal_table(result.signal_rows, label="Trial"))
    masked = result.metrics("With interference")
    print(f"paper: silence 3.35 -> 13.62, loss .02%, no bit errors")
    print(f"measured: silence {result.silence_mean('Without interference'):.2f} "
          f"-> {result.silence_mean('With interference'):.2f}, "
          f"loss {masked.packet_loss_percent:.3f}%, "
          f"{masked.body_bits_damaged} damaged bits")

    assert masked.body_bits_damaged == 0
    assert masked.packet_loss_percent < 0.15
    silence_delta = result.silence_mean("With interference") - result.silence_mean(
        "Without interference"
    )
    assert 8.0 < silence_delta < 14.0  # paper: +10.3
    level_delta = abs(
        result.level_mean("With interference")
        - result.level_mean("Without interference")
    )
    assert level_delta < 0.5  # level essentially unchanged

    unusable = result.unusable_metrics
    print(f"unmasked control: loss {unusable.packet_loss_percent:.1f}% "
          f"('completely unusable')")
    assert unusable.packet_loss_percent > 50.0
