"""T4 — Table 4: signal metrics with a single wall.

Paper: 10^8 bits per location with zero loss/error; plaster+mesh wall
costs ~5 levels, concrete ~2; quality unaffected.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import walls


def test_table04_walls(benchmark, bench_scale):
    result = run_once(benchmark, walls.run, scale=0.5 * bench_scale)
    print()
    print("Table 4: signal metrics with a single wall")
    print(render_signal_table(result.signal_rows, label="Trial"))
    plaster = result.wall_cost(("Air 1", "Wall 1"))
    concrete = result.wall_cost(("Air 2", "Wall 2"))
    print(f"paper: plaster+mesh ~5 levels, concrete ~2 levels, no errors")
    print(f"measured: plaster+mesh {plaster:.1f}, concrete {concrete:.1f}")

    assert 4.0 < plaster < 6.0
    assert 1.0 < concrete < 3.0
    assert plaster > concrete  # concrete is less of a hindrance
    for metrics in result.metrics_rows:
        assert metrics.body_bits_damaged == 0
        assert metrics.packet_loss_percent < 0.1
    for stats in result.signal_rows:
        assert stats.quality.mean > 14.5  # quality unaffected by walls
