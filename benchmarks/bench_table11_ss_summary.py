"""T11 — Table 11: spread-spectrum phone summary.

Paper: base-near configurations lose ~52 % of packets and truncate
100 % of survivors; remote cluster is harmless; the AT&T-handset
configuration is the intermediate regime (1 % loss, 4 % truncated,
59 % body damaged, worst 4.9 % of body bits).
"""

from benchmarks.conftest import run_once
from repro.experiments import phones_spread


def test_table11_ss_summary(benchmark, bench_scale):
    result = run_once(benchmark, phones_spread.run, scale=1.0 * bench_scale)
    print()
    print("Table 11: spread-spectrum phones summary")
    for s in result.summaries:
        print(f"  {s.name:>18}: loss {s.loss_percent:5.1f}%  "
              f"trunc {s.truncated_percent:5.1f}%  body {s.body_percent:5.1f}%  "
              f"worst {100 * s.worst_body_fraction:5.2f}%")
    print(f"paper: {phones_spread.PAPER_TABLE_11}")

    for trial in ("RS base", "RS cluster", "AT&T cluster"):
        s = result.summary(trial)
        assert 40.0 < s.loss_percent < 65.0  # paper ~51-52 %
        assert s.truncated_percent > 85.0  # paper 100 %

    remote = result.summary("RS remote cluster")
    assert remote.loss_percent < 1.0
    assert remote.truncated_percent == 0.0
    assert remote.body_percent == 0.0

    handset = result.summary("AT&T handset")
    assert handset.loss_percent < 4.0  # paper 1 %
    assert handset.truncated_percent < 8.0  # paper 4 %
    assert 45.0 < handset.body_percent < 70.0  # paper 59 %
    assert 0.025 < handset.worst_body_fraction < 0.075  # paper 4.9 %
