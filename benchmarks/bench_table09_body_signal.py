"""T9 — Table 9: human body effect on signal measurements.

Paper: the body drops the mean level from 12.55 to 6.73 (~6 levels);
undamaged packets keep quality ≈15 even at the reduced level.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import body


def test_table09_body_signal(benchmark, bench_scale):
    result = run_once(benchmark, body.run, scale=1.0 * bench_scale, seed=163)
    print()
    print("Table 9: human body signal metrics")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print("Breakdown of the body trial:")
    print(render_signal_table(result.body_breakdown))
    print(f"paper: 12.55 -> 6.73 (~5.8 levels); "
          f"measured cost {result.body_cost_levels:.1f} levels")

    assert 4.5 < result.body_cost_levels < 7.5
    assert result.level_mean("No body") == __import__("pytest").approx(12.55, abs=1.0)
    rows = {r.group: r for r in result.body_breakdown}
    assert rows["Undamaged"].quality.mean > 14.5
    if "Truncated" in rows:
        assert rows["Truncated"].quality.mean < 13.0
