"""T12 — Table 12: spread-spectrum phone signal measurements.

Paper: near configurations inflate the test packets' *signal level*
(means 31.5-32.5, maxima to 41) and push the silence level to 30-39;
remote and handset configurations sit in between; quality collapses in
the stomped configurations.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import phones_spread


def test_table12_ss_signal(benchmark, bench_scale):
    result = run_once(benchmark, phones_spread.run, scale=1.0 * bench_scale, seed=173)
    print()
    print("Table 12: spread-spectrum phone signal measurements")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print("paper: 'phones off' silence 2.2; stomped trials silence 30-39 "
          "with level means 31.5-32.5; remote silence ~21.8")

    rows = {r.group: r for r in result.signal_rows}
    baseline_level = rows["Phones off"].level.mean
    baseline_silence = rows["Phones off"].silence.mean

    for trial in ("RS base", "RS cluster", "AT&T cluster"):
        stats = rows[trial]
        # The AGC folds the phone's power into the level sample.
        assert stats.level.mean > baseline_level + 2.0
        assert stats.level.maximum > 34
        # Massive silence elevation.
        assert stats.silence.mean > baseline_silence + 20.0
        # Quality collapses (truncation-dominated stream).
        assert stats.quality.mean < 11.0

    remote = rows["RS remote cluster"]
    assert remote.level.mean == __import__("pytest").approx(baseline_level, abs=0.5)
    assert 12.0 < remote.silence.mean < 24.0
    assert remote.quality.mean > 14.5
