"""T7 — Table 7: Tx5 signal metrics by damage class.

Paper: at Tx5, body-damaged packets show noticeably reduced *level*
(8.72 vs 9.51 undamaged) while the truncated packet shows reduced
*quality* — evidence that "data decoding and clock recovery are
impaired by different signal features".
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import multiroom


def test_table07_tx5_breakdown(benchmark, bench_scale):
    result = run_once(benchmark, multiroom.run, scale=4.0 * bench_scale, seed=265)
    print()
    print("Table 7: Tx5 breakdown by damage class (4x packets for class "
          "statistics)")
    print(render_signal_table(result.tx5_breakdown))
    print("paper: undamaged level 9.51 q15.00; body-damaged level 8.72 "
          "q14.72; truncated q12.00")

    rows = {r.group: r for r in result.tx5_breakdown}
    undamaged = rows["Undamaged"]
    damaged = rows["Body damaged"]
    # Two distinct impairment paths: damage correlates with LOW LEVEL...
    assert damaged.level.mean < undamaged.level.mean
    # ...and only mildly with quality...
    assert damaged.quality.mean > 12.5
    assert damaged.quality.mean < undamaged.quality.mean
    # ...while truncation (when sampled) correlates with LOW QUALITY.
    if "Truncated" in rows:
        assert rows["Truncated"].quality.mean < undamaged.quality.mean - 2.0
