"""F2 — Figure 2: signal level with the shaded error region.

Paper: level ≥ ~10 receives reliably; below 8 the error rate becomes
very high.
"""

from benchmarks.conftest import run_once
from repro.experiments import error_vs_level


def test_figure02_error_region(benchmark, bench_scale):
    result = run_once(benchmark, error_vs_level.run, scale=1.0 * bench_scale, seed=152)
    print()
    print("Figure 2: error rates by signal level (error region < 8)")
    for b in result.level_bins:
        marker = " << error region" if b.level < 8 else ""
        print(f"  level {b.level:2d}: loss {100 * b.loss_fraction:6.2f}%  "
              f"damage {100 * b.damage_fraction:6.2f}%{marker}")
    print("paper: reliable at level >= ~10; 'very high' error rate below 8")

    for b in result.level_bins:
        if b.level >= 10:
            assert b.loss_fraction < 0.01
            assert b.damage_fraction < 0.03
        if b.level <= 5:
            assert b.loss_fraction + b.damage_fraction > 0.2
    # The crossover: error rate climbs by more than an order of
    # magnitude between level >= 10 and level <= 6.
    strong = [b for b in result.level_bins if b.level >= 10]
    weak = [b for b in result.level_bins if b.level <= 6]
    strong_rate = max(b.loss_fraction + b.damage_fraction for b in strong)
    weak_rate = min(b.loss_fraction + b.damage_fraction for b in weak)
    assert weak_rate > 10 * max(strong_rate, 1e-4)
