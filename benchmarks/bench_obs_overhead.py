"""Disabled-instrumentation overhead budget for the hot paths.

The instrumentation bus promises near-zero cost when disabled (the
default): every hook is one ``STATE`` attribute load plus a branch.
These checks time the fast-trial path as shipped (hooks present,
observability off) against an *uninstrumented baseline* — the same code
with every obs hook monkeypatched out — and assert the disabled-mode
tax stays within the 5% budget documented in docs/OBSERVABILITY.md.

Methodology: paired, interleaved min-of-N timing.  The minimum over
many repetitions is the standard robust estimator for "how fast can
this code go" — it discards scheduler noise, GC pauses, and cache-cold
outliers, which at ~5% resolution would otherwise dominate.  Rounds are
interleaved (A,B,A,B,...) so drift in background load biases neither
side.
"""

from __future__ import annotations

import contextlib
from time import perf_counter

import pytest

from repro import obs
from repro.analysis.matching import TraceMatcher
from repro.framing.testpacket import TestPacketFactory
from repro.obs import runtime
from repro.trace import trial as trial_module
from repro.trace.trial import TrialConfig, run_fast_trial

# The acceptance budget: disabled-mode instrumentation may cost at most
# this fraction on top of the uninstrumented baseline, plus a small
# absolute allowance for timer granularity.
OVERHEAD_BUDGET = 0.05
ABSOLUTE_SLACK_S = 2e-3
ROUNDS = 7


def _fast_trial() -> None:
    run_fast_trial(
        TrialConfig(name="overhead", packets=2_000, mean_level=29.5, seed=11)
    )


@contextlib.contextmanager
def _uninstrumented(monkeypatch_cls=pytest.MonkeyPatch):
    """The fast-trial path with every obs hook bypassed.

    Replaces the per-packet hook wrappers with their implementations and
    the per-trial hooks with no-ops, approximating a build of the
    library that never had instrumentation.
    """
    patch = monkeypatch_cls()
    try:
        patch.setattr(TraceMatcher, "match_bytes", TraceMatcher._match_impl)
        patch.setattr(TestPacketFactory, "build", TestPacketFactory._build_impl)
        patch.setattr(trial_module, "_record_fast_trial_metrics",
                      lambda config, dispositions: None)
        patch.setattr(trial_module._obs, "span",
                      lambda name, **labels: contextlib.nullcontext())
        yield
    finally:
        patch.undo()


def _interleaved_minimums(rounds: int, first, second) -> tuple[float, float]:
    """Min-of-``rounds`` for two thunks with alternating execution."""
    best_first = float("inf")
    best_second = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        first()
        elapsed = perf_counter() - start
        if elapsed < best_first:
            best_first = elapsed
        start = perf_counter()
        second()
        elapsed = perf_counter() - start
        if elapsed < best_second:
            best_second = elapsed
    return best_first, best_second


def _min_of(rounds: int, thunk) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        thunk()
        elapsed = perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@pytest.mark.obs_overhead
def test_disabled_state_is_default():
    """The process-wide state must be off unless somebody configured it."""
    assert runtime.STATE.enabled is False
    assert runtime.STATE.profiling is False
    assert runtime.STATE.metrics.enabled is False


@pytest.mark.obs_overhead
def test_disabled_telemetry_fast_trial_within_budget():
    """Shipped disabled mode vs the uninstrumented baseline: <= 5%."""
    obs.reset()
    _fast_trial()  # warm imports, allocators, and caches

    def baseline() -> None:
        with _uninstrumented():
            _fast_trial()

    baseline_s, disabled_s = _interleaved_minimums(
        ROUNDS, baseline, _fast_trial
    )
    assert disabled_s <= baseline_s * (1 + OVERHEAD_BUDGET) + ABSOLUTE_SLACK_S, (
        f"disabled-mode fast trial exceeds the {OVERHEAD_BUDGET:.0%} budget: "
        f"{disabled_s * 1e3:.2f}ms vs {baseline_s * 1e3:.2f}ms uninstrumented"
    )


@pytest.mark.obs_overhead
def test_enabled_overhead_is_bounded():
    """Enabled-mode accounting is bulk (per trial, not per packet) on
    the fast path, so even with metrics and profiling on the tax stays
    within a factor of two of disabled mode."""
    obs.reset()
    _fast_trial()
    disabled_s = _min_of(5, _fast_trial)
    with obs.session():
        _fast_trial()
        enabled_s = _min_of(5, _fast_trial)
    assert enabled_s <= disabled_s * 2.0 + ABSOLUTE_SLACK_S, (
        f"enabled-mode fast trial too slow: {enabled_s * 1e3:.2f}ms vs "
        f"{disabled_s * 1e3:.2f}ms disabled"
    )
