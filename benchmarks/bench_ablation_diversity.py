"""X8 — antenna selection diversity ablation.

Section 2's dual-antenna receiver, valued at the error-region edge:
disabling the second antenna measurably raises loss+damage at levels
6-8, and a hypothetical 4-branch array helps further.
"""

from benchmarks.conftest import run_once
from repro.experiments import diversity_ablation


def test_ablation_diversity(benchmark, bench_scale):
    result = run_once(benchmark, diversity_ablation.run, scale=1.0 * bench_scale)
    print()
    print("Ablation X8: error rate (lost+damaged) by antenna count")
    for level in diversity_ablation.LEVELS:
        cells = [
            result.point(level, b).error_fraction
            for b in diversity_ablation.BRANCH_COUNTS
        ]
        print(f"  level {level:4.1f}: " + "  ".join(f"{100 * c:6.2f}%" for c in cells))

    # In the transition band the second antenna cuts the error rate...
    for level in (8.0, 7.0, 6.0):
        single = result.point(level, 1).error_fraction
        double = result.point(level, 2).error_fraction
        assert double < single
    # ...by a meaningful factor overall.
    total_single = sum(result.point(lv, 1).error_fraction for lv in (8.0, 7.0, 6.0))
    total_double = sum(result.point(lv, 2).error_fraction for lv in (8.0, 7.0, 6.0))
    assert total_single / total_double > 1.15
    # More branches keep helping (monotone at the deep edge).
    assert (
        result.point(6.0, 4).error_fraction
        < result.point(6.0, 2).error_fraction
        < result.point(6.0, 1).error_fraction
    )
