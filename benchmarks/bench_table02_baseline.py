"""T2 — Table 2: in-room base case.

Paper: nine office trials, 40k-488k packets each, >10^10 body bits
total, loss .01-.07 %, at most one corrupted bit per trial.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_metrics_table
from repro.experiments import baseline

SCALE = 0.05  # of the paper's 1.36M total packets


def test_table02_baseline(benchmark, bench_scale):
    result = run_once(benchmark, baseline.run, scale=SCALE * bench_scale)
    print()
    print("Table 2: Results of in-room experiment "
          f"(scale={SCALE * bench_scale:g})")
    print(render_metrics_table(result.rows))
    print(f"paper: loss .01-.07%, ~1 corrupted bit over 10^10 body bits")
    print(f"measured: worst loss {result.worst_loss_percent:.3f}%, "
          f"{result.total_damaged_bits} corrupted bits over "
          f"{result.total_body_bits:.2g} body bits")

    assert result.worst_loss_percent < 0.2
    assert result.aggregate_ber < 1e-8
    for row in result.rows:
        assert row.packets_truncated <= 3
