"""T5 — Table 5: multi-room loss and error results.

Paper: Tx1/Tx2 essentially perfect; Tx4 nearly so; Tx5 shows the first
corrupted bodies (25 packets, 82 bits, worst 7).
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_metrics_table
from repro.experiments import multiroom


def test_table05_multiroom(benchmark, bench_scale):
    result = run_once(benchmark, multiroom.run, scale=1.0 * bench_scale)
    print()
    print("Table 5: multi-room results")
    print(render_metrics_table(result.metrics_rows))
    print("paper Tx5: 1440 received, .07% loss, ~25 damaged, 82 bits, worst 7")

    for name in ("Tx1", "Tx2"):
        metrics = result.metrics(name)
        assert metrics.body_bits_damaged == 0
        assert metrics.packet_loss_percent < 0.15
    tx4 = result.metrics("Tx4")
    assert tx4.packet_loss_percent < 0.3
    tx5 = result.metrics("Tx5")
    assert 5 <= tx5.body_damaged_packets <= 60
    assert 15 <= tx5.body_bits_damaged <= 250
    assert tx5.worst_body_bits <= 30
