"""X3 — MAC ablation: why a radio runs CSMA/CA, not CSMA/CD.

Paper, Section 2: WaveLAN cannot sense collisions, so CSMA/CD's
optimistic transmit-when-free turns waiting-station pile-ups directly
into packet loss; CSMA/CA's random post-busy delay avoids them.
"""

from benchmarks.conftest import run_once
from repro.experiments import mac_ablation


def test_ablation_mac(benchmark, bench_scale):
    result = run_once(benchmark, mac_ablation.run, scale=1.0 * bench_scale)
    print()
    print("Ablation X3: 3-sender contention")
    for o in result.outcomes:
        print(f"  {o.variant:>14}: {100 * o.delivery_fraction:5.1f}% delivered, "
              f"{o.collisions} collisions, {o.goodput_bps / 1e6:.2f} Mb/s")

    ca = result.outcome("csma_ca")
    cd_wired = result.outcome("csma_cd_wired")
    cd_blind = result.outcome("csma_cd_blind")

    # On a wire, CD's optimism is fine (detection recovers every pile-up).
    assert cd_wired.delivery_fraction > 0.9
    # On a radio without detection, the same optimism is catastrophic.
    assert cd_blind.delivery_fraction < 0.3
    # CSMA/CA recovers almost all of the wired performance.
    assert ca.delivery_fraction > 0.85
    assert ca.delivery_fraction > cd_blind.delivery_fraction + 0.5
