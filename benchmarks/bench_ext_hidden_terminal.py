"""X6 — the hidden-transmitter problem and the capture effect.

Section 7.4's conjecture, experimentally verified in the simulator:
mutual carrier sense serializes contending senders; hiding them from
each other (high thresholds) destroys an equidistant receiver's
reception entirely, while an off-centre receiver still captures its
stronger neighbour.
"""

from benchmarks.conftest import run_once
from repro.experiments import hidden_terminal


def test_ext_hidden_terminal(benchmark, bench_scale):
    result = run_once(benchmark, hidden_terminal.run, scale=1.0 * bench_scale)
    print()
    print("Extension X6: hidden transmitters")
    for o in result.outcomes:
        print(f"  {o.scenario:>28}: total {100 * o.total_intact_fraction:5.1f}%  "
              f"best-sender {100 * o.stronger_intact_fraction:5.1f}%  "
              f"collisions {o.collisions_a + o.collisions_b}")

    sensed = result.outcome("mutual carrier sense")
    centred = result.outcome("hidden, receiver centred")
    off_centre = result.outcome("hidden, receiver off-centre")

    # CSMA/CA with mutual carrier sense keeps the channel nearly clean.
    assert sensed.total_intact_fraction > 0.9
    assert sensed.collisions_a + sensed.collisions_b > 0  # they did contend
    # Mutually hidden senders never sense each other...
    assert centred.collisions_a + centred.collisions_b == 0
    # ...and the equidistant receiver gets (almost) nothing.
    assert centred.total_intact_fraction < 0.1
    # The capture effect: an off-centre receiver still hears its
    # stronger neighbour most of the time.
    assert off_centre.stronger_intact_fraction > 0.7
    # ...while the weaker sender is stomped.
    weaker = min(off_centre.intact_a, off_centre.intact_b)
    assert weaker / off_centre.frames_offered < 0.1
