"""Benchmark harness conventions.

Each benchmark module regenerates one paper table or figure (DESIGN.md
§4), prints the paper-style output, and asserts the *shape* findings.
``benchmark.pedantic(..., rounds=1)`` is used throughout: these are
experiment reproductions, not micro-benchmarks, and one round at
meaningful scale is the interesting measurement.

Scales are chosen so the whole suite finishes in a few minutes; the
``REPRO_BENCH_SCALE`` environment variable multiplies every module's
default scale (set it to 10 to approach the paper's full trial lengths).
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Global scale multiplier from the environment (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
