"""X5 — the Section-8 cellular WaveLAN (codes + power control).

Quantifies the paper's future-work sketch: sequence-family sizes vs
correlation bounds, and cell isolation under same-code / CDMA /
power-control variants.
"""

from benchmarks.conftest import run_once
from repro.experiments import cdma_extension


def test_ext_cdma(benchmark, bench_scale):
    result = run_once(benchmark, cdma_extension.run, scale=1.0 * bench_scale)
    print()
    print("Extension X5: cellular WaveLAN")
    print(f"  family: {result.family.size} sequences, rejection "
          f"{result.family.rejection_db():.1f} dB")
    for o in result.outcomes:
        print(f"  {o.variant:>28}: loss {o.metrics.packet_loss_percent:5.1f}%  "
              f"trunc+dmg {100 * o.damaged_fraction:5.1f}%")

    # The paper's "difficult to construct large families" — quantified:
    # Barker-quality self-correlation (<=1) permits at most 2 codes.
    assert result.tradeoff[(1, 9)] <= 2
    # Relaxing self-correlation to 2 buys a double-digit family at
    # cross-peak 7.
    assert result.tradeoff[(2, 7)] >= 10
    # Family size grows monotonically with looser cross bounds.
    assert (
        result.tradeoff[(2, 3)]
        <= result.tradeoff[(2, 5)]
        <= result.tradeoff[(2, 7)]
        <= result.tradeoff[(2, 9)]
    )

    # Isolation: same-code adjacent cells are unusable...
    same = result.outcome("same code")
    assert same.metrics.packet_loss_percent > 40.0
    # ...11-chip code diversity alone does not fix it...
    cdma11 = result.outcome("cdma (11 chips)")
    assert cdma11.metrics.packet_loss_percent > 30.0
    # ...power control does...
    pc = result.outcome("power control only")
    assert pc.metrics.packet_loss_percent < 2.0
    # ...and codes + power control is the cleanest of all.
    both = result.outcome("cdma + power control")
    assert both.metrics.packet_loss_percent < 2.0
    assert both.damaged_fraction <= pc.damaged_fraction
