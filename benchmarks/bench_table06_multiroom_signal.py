"""T6 — Table 6: multi-room signal metrics.

Paper level means: Tx1 28.58, Tx2 26.66, Tx4 13.81, Tx5 9.50 — one
concrete wall costs ~2 levels, distance+obstacles the rest; quality
pinned at 15 everywhere.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_signal_table
from repro.experiments import multiroom


def test_table06_multiroom_signal(benchmark, bench_scale):
    result = run_once(benchmark, multiroom.run, scale=1.0 * bench_scale, seed=165)
    print()
    print("Table 6: multi-room signal metrics")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print(f"paper means: {multiroom.PAPER_LEVEL_MEANS}")

    for name, paper_mean in multiroom.PAPER_LEVEL_MEANS.items():
        measured = result.level_mean(name)
        assert abs(measured - paper_mean) < 1.5, (name, measured, paper_mean)
    # Ordering is strict.
    assert (
        result.level_mean("Tx1")
        > result.level_mean("Tx2")
        > result.level_mean("Tx4")
        > result.level_mean("Tx5")
    )
    # Quality essentially 15 at every location (Table 6).
    for stats in result.signal_rows:
        assert stats.quality.mean > 14.5
