"""X7 — effective throughput across the error environment.

Converts the paper's error rates into goodput and locates the level at
which Section-8-style FEC stops being "useless overhead" and starts
paying for itself.
"""

from benchmarks.conftest import run_once
from repro.experiments import throughput
from repro.experiments.throughput import OFFERED_RATE_BPS


def test_ext_throughput(benchmark, bench_scale):
    result = run_once(benchmark, throughput.run, scale=1.0 * bench_scale)
    print()
    print("Extension X7: goodput vs signal level")
    for p in result.points:
        raw = OFFERED_RATE_BPS * p.raw_delivery_fraction / 1e6
        fec = p.fec_goodput_bps(result.fec_overhead) / 1e6
        print(f"  level {p.level:5.1f}: raw {raw:6.3f} Mb/s  "
              f"fec {fec:6.3f} Mb/s")
    crossover = result.crossover_level()
    print(f"  crossover: level ~{crossover:.1f}")

    # The strong link delivers essentially the full offered rate raw.
    strong = result.point(29.5)
    assert strong.raw_delivery_fraction > 0.99
    # Raw goodput decays monotonically into the error region.
    fractions = [p.raw_delivery_fraction for p in result.points]
    assert fractions == sorted(fractions, reverse=True)
    # FEC always costs its overhead on clean links...
    assert strong.fec_goodput_bps(result.fec_overhead) < strong.raw_goodput_bps
    # ...and wins somewhere inside the error region (crossover below 8).
    assert 4.0 <= crossover <= 8.0
    weak = result.point(5.0)
    assert weak.fec_goodput_bps(result.fec_overhead) > weak.raw_goodput_bps