"""T13 — Table 13: spread-spectrum test packets by damage class.

Paper (aggregated over all SS trials): truncated packets have sharply
reduced quality (mean 8.76); body-damaged packets mildly reduced
(13.62); undamaged keep 14.81; "very low signal quality seems to be a
good predictor of truncation".
"""

from benchmarks.conftest import run_once
from repro.analysis.signalstats import signal_stats_by_class
from repro.analysis.tables import render_signal_table
from repro.experiments import phones_spread


def test_table13_ss_breakdown(benchmark, bench_scale):
    result = run_once(benchmark, phones_spread.run, scale=1.0 * bench_scale, seed=273)
    print()

    # Aggregate the damage-class stats across all six trials, as the
    # paper's Table 13 does.
    merged = None
    for trial, classified in result.classified.items():
        if merged is None:
            merged = classified
        else:
            merged.packets.extend(classified.packets)
    rows = signal_stats_by_class(merged)
    print("Table 13: SS test packets by damage class (all trials pooled)")
    print(render_signal_table(rows))
    print("paper quality means: undamaged 14.81 / truncated 8.76 / "
          "body damaged 13.62")

    by_group = {r.group: r for r in rows}
    undamaged = by_group["Undamaged"]
    truncated = by_group["Truncated"]
    damaged = by_group["Body damaged"]
    assert undamaged.quality.mean > 14.5
    assert truncated.quality.mean < 11.0  # sharply depressed
    assert 12.0 < damaged.quality.mean < 14.5  # mildly depressed
    # Low quality predicts truncation: the gap is wide.
    assert undamaged.quality.mean - truncated.quality.mean > 4.0
