"""X9 — TCP-Reno over the measured error environment (Section 9.3).

Quantifies the paper's claim that high-quality wireless links need no
wireless-aware transport, and locates exactly where that stops being
true.
"""

from benchmarks.conftest import run_once
from repro.experiments import tcp_over_wavelan


def test_ext_tcp(benchmark, bench_scale):
    result = run_once(benchmark, tcp_over_wavelan.run, scale=1.0 * bench_scale)
    print()
    print("Extension X9: TCP over the error environment")
    for o in result.outcomes:
        state = "" if o.finished else " (stall)"
        print(f"  {o.scenario:>20} {o.variant:>5}: "
              f"{o.throughput_mbps:5.2f} Mb/s{state}  "
              f"tcp rtx {o.tcp_retransmissions}, timeouts {o.tcp_timeouts}")

    # The Section-9.3 claim: plain TCP at full rate on good links.
    for scenario in ("office (29.5)", "Tx4-like (13.8)"):
        plain = result.outcome(scenario, "plain")
        assert plain.finished
        assert plain.throughput_mbps > 1.6
        assert plain.tcp_timeouts == 0

    # The error region collapses plain TCP by an order of magnitude...
    clean = result.outcome("office (29.5)", "plain")
    deep_plain = result.outcome("error region (7.0)", "plain")
    assert deep_plain.throughput_mbps < clean.throughput_mbps / 5
    # ...link-layer ARQ recovers most of it...
    deep_arq = result.outcome("error region (7.0)", "arq")
    assert deep_arq.finished
    assert deep_arq.throughput_mbps > clean.throughput_mbps * 0.7
    # ...and the snoop agent lands in between at the region edge.
    edge = "region edge (8.0)"
    assert (
        result.outcome(edge, "plain").throughput_mbps
        < result.outcome(edge, "snoop").throughput_mbps
        <= result.outcome(edge, "arq").throughput_mbps + 0.05
    )
    # Snoop suppresses the congestion response entirely at the edge.
    assert result.outcome(edge, "snoop").tcp_timeouts == 0

    # The stomping regime defeats every sub-transport remedy.
    for variant in ("plain", "arq", "snoop"):
        ss = result.outcome("SS phone, base near", variant)
        assert ss.throughput_mbps < 0.3
