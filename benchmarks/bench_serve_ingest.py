"""Serve-smoke: the streaming ingest service under concurrent load.

Starts a real :class:`TraceAnalysisServer` on loopback, replays a
stored ``.wlt2`` trace over many concurrent loadgen sessions, and
checks the two things that matter:

* **Correctness under concurrency** — every session's SUMMARY carries
  the exact verdict counts and the chunking-independent verdict digest
  of the batch classifier.
* **Ingest throughput** — aggregate packets/s lands in the
  ``serve_ingest`` stage of ``BENCH_internal.json``, where the
  ``bench diff`` gate tracks it against ``benchmarks/baseline.json``.

Run with ``pytest -m serve_smoke benchmarks/bench_serve_ingest.py``.
The assert floor (``SERVE_SMOKE_MIN_PPS``, default 50k packets/s) is a
smoke check against order-of-magnitude regressions; the recorded
number is the real measurement (≈250k packets/s steady-state on the
development container's single core, jobs=1).
"""

import asyncio
import hashlib
import os

import pytest

from repro.analysis.classify import IncrementalClassifier, verdict_row_bytes
from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServeConfig, TraceAnalysisServer
from repro.trace.columnar import ColumnarTrace
from repro.trace.persist import load_trace, save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

try:
    from benchmarks.bench_internal_performance import _record_stage
except ImportError:  # running with benchmarks/ itself on sys.path
    from bench_internal_performance import _record_stage

SESSIONS = 32
TRIAL_PACKETS = 5_000
CHUNK_RECORDS = 4_096
MIN_PPS = float(os.environ.get("SERVE_SMOKE_MIN_PPS", "50000"))


@pytest.fixture(scope="module")
def stored_trace(tmp_path_factory) -> ColumnarTrace:
    """A clean office-grade trial, round-tripped through ``.wlt2`` so
    the benchmark ingests exactly what a stored trace replays."""
    output = run_fast_trial(
        TrialConfig(
            name="serve-smoke",
            packets=TRIAL_PACKETS,
            mean_level=29.5,
            seed=20260808,
        )
    )
    path = tmp_path_factory.mktemp("serve") / "smoke.wlt2"
    save_trace(output.trace, path)
    trace = load_trace(path)
    assert isinstance(trace, ColumnarTrace)
    return trace


def _reference(trace: ColumnarTrace) -> tuple[str, dict]:
    classifier = IncrementalClassifier(trace.spec, trace.packets_sent)
    classifier.feed(trace)
    digest = hashlib.blake2b(
        verdict_row_bytes(classifier.verdict_columns()), digest_size=8
    ).hexdigest()
    return digest, classifier.count_summary()


async def _run_once(trace: ColumnarTrace, sessions: int):
    server = TraceAnalysisServer(ServeConfig(jobs=1, heartbeat_s=0))
    await server.start()
    try:
        return await run_loadgen(
            server.address,
            trace,
            sessions=sessions,
            chunk_records=CHUNK_RECORDS,
        )
    finally:
        await server.stop()


@pytest.mark.serve_smoke
def test_serve_ingest_throughput(stored_trace):
    """32 concurrent sessions: exact verdicts, recorded throughput."""
    digest, counts = _reference(stored_trace)

    # Warm-up (template bank, allocator, branch caches), then best-of.
    asyncio.run(_run_once(stored_trace, sessions=4))
    best = None
    for _ in range(2):
        report = asyncio.run(_run_once(stored_trace, sessions=SESSIONS))
        if best is None or report.packets_per_s > best.packets_per_s:
            best = report

    expected_records = stored_trace.packets_received * SESSIONS
    assert len(best.sessions) == SESSIONS
    assert best.records == expected_records
    for session in best.sessions:
        assert session.summary["verdict_digest"] == digest
        assert session.summary["counts"] == counts
    # Backpressure invariant: the per-session queue never exceeded its
    # configured bound (well-behaved clients shouldn't even approach it).
    queue_bound = ServeConfig().queue_chunks
    assert 0 <= best.max_queue_depth <= queue_bound

    _record_stage(
        "serve_ingest",
        {
            "sessions": SESSIONS,
            "records_per_session": stored_trace.packets_received,
            "chunk_records": CHUNK_RECORDS,
            "ingest_wall_s": round(best.wall_s, 4),
            "ingest_packets_per_s": round(best.packets_per_s),
            "max_queue_depth": best.max_queue_depth,
        },
    )
    assert best.packets_per_s >= MIN_PPS
