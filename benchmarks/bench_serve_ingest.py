"""Serve-smoke: the streaming ingest service under concurrent load.

Starts a real :class:`TraceAnalysisServer` (``jobs=4``, shm-ring
transport, chunk coalescing) on a unix socket, then drives it from
**separate client processes** — ``run_loadgen_processes`` — so the
single asyncio loop of an in-process loadgen can never be the
bottleneck being measured.  Checks the three things that matter:

* **Correctness under concurrency** — every session's SUMMARY carries
  the exact verdict counts and the chunking-independent verdict digest
  of the batch classifier, and every session actually rode the shm
  ring (``CHUNK_REF`` frames), not the socket fallback.
* **Ingest throughput** — the aggregate server-side rate over the true
  client span (``max(end) − min(start)`` across worker processes on
  the shared monotonic clock) lands in the ``serve_ingest`` stage of
  ``BENCH_internal.json`` as ``ingest_packets_per_s``, where the
  ``bench diff`` gate tracks it against ``benchmarks/baseline.json``.
* **Offered load** — the client-side send rate is recorded alongside
  (``send_packets_per_s``); when it sits well above the ingest rate
  the server was the bottleneck being measured, when the two converge
  the *client* was and the ingest number is a lower bound.

Run with ``pytest -m serve_smoke benchmarks/bench_serve_ingest.py``.
The assert floor (``SERVE_SMOKE_MIN_PPS``, default 150k packets/s) is
a smoke check against order-of-magnitude regressions; the recorded
number is the real measurement (≈650k packets/s steady-state on the
development container, whose single core runs server parent, four
shard workers, and all client processes time-sliced — an in-process
single-loop loadgen on the same box peaks ≈860k because it skips the
cross-process scheduling tax).
"""

import asyncio
import functools
import hashlib
import os

import pytest

from repro.analysis.classify import IncrementalClassifier, verdict_row_bytes
from repro.serve.loadgen import run_loadgen_processes
from repro.serve.server import ServeConfig, TraceAnalysisServer
from repro.trace.columnar import ColumnarTrace
from repro.trace.persist import load_trace, save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

try:
    from benchmarks.bench_internal_performance import _record_stage
except ImportError:  # running with benchmarks/ itself on sys.path
    from bench_internal_performance import _record_stage

SESSIONS = 32
PROCESSES = 4
JOBS = 4
REPEATS = 2
TRIAL_PACKETS = 20_000
CHUNK_RECORDS = 4_096
MIN_PPS = float(os.environ.get("SERVE_SMOKE_MIN_PPS", "150000"))

# SERVE_SMOKE_UVLOOP=1 runs the whole smoke under uvloop: the policy
# installed here is inherited by the forked loadgen worker processes,
# so server loop and every client loop all run the fast path.  The
# assert makes a CI leg that *asked* for uvloop fail loudly if the
# wheel is missing instead of silently re-testing stock asyncio.
UVLOOP = bool(os.environ.get("SERVE_SMOKE_UVLOOP"))
if UVLOOP:
    from repro.serve import install_uvloop

    assert install_uvloop(explicit=True), (
        "SERVE_SMOKE_UVLOOP is set but uvloop is not installed "
        "(pip install 'repro[serve]')"
    )


@pytest.fixture(scope="module")
def stored_trace(tmp_path_factory):
    """A clean office-grade trial, round-tripped through ``.wlt2`` so
    the benchmark ingests exactly what a stored trace replays.  Yields
    ``(trace, path)`` — client worker processes load from the path."""
    output = run_fast_trial(
        TrialConfig(
            name="serve-smoke",
            packets=TRIAL_PACKETS,
            mean_level=29.5,
            seed=20260808,
        )
    )
    path = tmp_path_factory.mktemp("serve") / "smoke.wlt2"
    save_trace(output.trace, path)
    trace = load_trace(path)
    assert isinstance(trace, ColumnarTrace)
    return trace, str(path)


def _reference(trace: ColumnarTrace) -> tuple[str, dict]:
    classifier = IncrementalClassifier(trace.spec, trace.packets_sent)
    classifier.feed(trace)
    digest = hashlib.blake2b(
        verdict_row_bytes(classifier.verdict_columns()), digest_size=8
    ).hexdigest()
    return digest, classifier.count_summary()


async def _run_once(trace_path: str, unix_path: str, *, warmup: int):
    """One server lifetime: jobs=4 ring ingest, external client procs.

    The loadgen runs in a thread (it blocks on a ProcessPoolExecutor)
    so this loop stays free to serve.
    """
    server = TraceAnalysisServer(
        ServeConfig(
            unix_path=unix_path,
            jobs=JOBS,
            heartbeat_s=0,
            transport="ring",
            coalesce_chunks=4,
        )
    )
    await server.start()
    try:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                run_loadgen_processes,
                unix_path,
                trace_path,
                sessions=SESSIONS,
                processes=PROCESSES,
                chunk_records=CHUNK_RECORDS,
                name="smoke",
                repeats=REPEATS,
                warmup=warmup,
            ),
        )
    finally:
        await server.stop()


@pytest.mark.serve_smoke
def test_serve_ingest_throughput(stored_trace, tmp_path):
    """32 sessions from 4 client processes: exact verdicts, recorded
    server ingest rate and client offered rate."""
    trace, trace_path = stored_trace
    digest, counts = _reference(trace)

    best = None
    for attempt in range(2):
        report = asyncio.run(
            _run_once(
                trace_path,
                str(tmp_path / f"smoke{attempt}.sock"),
                # Each server lifetime starts with cold rings and cold
                # shard matchers; one unmeasured pass pages them in.
                warmup=1,
            )
        )
        if best is None or report.packets_per_s > best.packets_per_s:
            best = report

    expected_sessions = SESSIONS * REPEATS
    expected_records = trace.packets_received * expected_sessions
    assert len(best.sessions) == expected_sessions
    assert best.records == expected_records
    for session in best.sessions:
        assert session.summary["verdict_digest"] == digest
        assert session.summary["counts"] == counts
        # Same-host unix-socket clients must ride the shm ring; a
        # silent fall back to socket framing is a transport regression
        # even when the digest still checks out.
        assert session.ring_used
    # Backpressure invariant: the per-session queue never exceeded its
    # configured bound (well-behaved clients shouldn't even approach it).
    queue_bound = ServeConfig().queue_chunks
    assert 0 <= best.max_queue_depth <= queue_bound

    _record_stage(
        "serve_ingest",
        {
            "sessions": SESSIONS,
            "processes": PROCESSES,
            "jobs": JOBS,
            "repeats": REPEATS,
            "records_per_session": trace.packets_received,
            "chunk_records": CHUNK_RECORDS,
            "ingest_wall_s": round(best.wall_s, 4),
            "ingest_packets_per_s": round(best.packets_per_s),
            "send_packets_per_s": round(best.send_packets_per_s),
            "max_queue_depth": best.max_queue_depth,
            "uvloop": UVLOOP,
        },
    )
    assert best.packets_per_s >= MIN_PPS
