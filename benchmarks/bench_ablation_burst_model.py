"""X4 — burst vs i.i.d. error process ablation.

DESIGN.md §5: the channel's burstiness is a load-bearing modelling
choice.  At matched average BER, bursts collapse the raw RCPC codes and
interleaving restores them; on an i.i.d. channel interleaving changes
nothing.
"""

from benchmarks.conftest import run_once
from repro.experiments import burst_ablation


def test_ablation_burst_model(benchmark, bench_scale):
    result = run_once(benchmark, burst_ablation.run, scale=1.0 * bench_scale)
    print()
    print("Ablation X4: burst (GE) vs i.i.d., matched mean BER")
    for mean_ber in burst_ablation.MEAN_BERS:
        for rate in ("4/5", "1/2"):
            iid = result.outcome(mean_ber, rate, "iid", False)
            burst = result.outcome(mean_ber, rate, "burst", False)
            burst_ilv = result.outcome(mean_ber, rate, "burst", True)
            print(f"  BER {mean_ber:.0e} rate {rate}: iid "
                  f"{100 * iid.recovery_fraction:.0f}%  burst "
                  f"{100 * burst.recovery_fraction:.0f}%  burst+ilv "
                  f"{100 * burst_ilv.recovery_fraction:.0f}%")

    # At 1e-2, the 1/2 code is perfect on iid errors but collapses on
    # bursts...
    iid = result.outcome(1e-2, "1/2", "iid", False)
    burst = result.outcome(1e-2, "1/2", "burst", False)
    assert iid.recovery_fraction == 1.0
    assert burst.recovery_fraction < 0.6
    # ...and interleaving restores it.
    burst_ilv = result.outcome(1e-2, "1/2", "burst", True)
    assert burst_ilv.recovery_fraction == 1.0
    # On the i.i.d. channel interleaving is a no-op (within noise).
    iid_ilv = result.outcome(1e-2, "1/2", "iid", True)
    assert abs(iid_ilv.recovery_fraction - iid.recovery_fraction) < 0.15
    # Strong codes beat weak codes on both channels.
    weak_burst = result.outcome(1e-2, "8/9", "burst", True)
    assert burst_ilv.recovery_fraction > weak_burst.recovery_fraction
