"""Parallel report runner: speedup measurement + determinism gate.

Times ``build_report`` serially and with a process pool, prints the
speedup, and asserts the invariant that makes ``--jobs`` safe to use at
all: the comparison table and per-experiment event/packet counts are
byte-identical.  The speedup assertion only arms on hosts with enough
cores for it to be physical (the pool costs fork + pickle overhead, so
a 1-core container legitimately sees ~1x or slightly below).
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.experiments.report import build_report

SCALE = 0.05
SEED = 1996
JOBS = 8
# Hosts with at least this many cores must show a real speedup.
SPEEDUP_MIN_CORES = 8
SPEEDUP_FLOOR = 3.0


@pytest.mark.slow
def test_parallel_report_speedup_and_determinism(benchmark, bench_scale):
    scale = SCALE * bench_scale

    start = perf_counter()
    serial = build_report(scale=scale, seed=SEED, jobs=1)
    serial_s = perf_counter() - start

    def parallel_run():
        return build_report(scale=scale, seed=SEED, jobs=JOBS)

    start = perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    print()
    print(f"serial {serial_s:.2f}s, parallel (jobs={JOBS}) {parallel_s:.2f}s "
          f"-> speedup {speedup:.2f}x on {cores} cores")

    # Determinism is unconditional — the whole point of the subsystem.
    assert parallel.table_markdown() == serial.table_markdown()
    assert [
        (r.experiment, r.events_fired, r.packets_offered)
        for r in parallel.resources
    ] == [
        (r.experiment, r.events_fired, r.packets_offered)
        for r in serial.resources
    ]

    if cores >= SPEEDUP_MIN_CORES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x on {cores} cores, got {speedup:.2f}x"
        )
